//! Bitonic sort steps — Sec. II lists "bitonic sort on large arrays" among
//! the kernels that respond well to tiling: every step streams the whole
//! array with fixed, input-independent compare-exchange partners.

use gpu_sim::{BlockIdx, Buffer, Dim3, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use super::reduce::ARRAY_BLOCK;

/// One bitonic compare-exchange step `(k, j)` over `data`, in place.
///
/// Thread `i` with partner `i ^ j > i` orders the pair `(data[i],
/// data[partner])` ascending when `i & k == 0`, descending otherwise. The
/// partner distance `j` determines how far block dependencies reach: small
/// `j` steps are tiling-friendly, large `j` steps span the array.
///
/// Because the step updates `data` in place and the next step is a new
/// kernel, successive steps form a producer→consumer chain through the same
/// buffer — dependency analysis sees the read-after-write at word
/// granularity.
#[derive(Debug, Clone)]
pub struct BitonicStep {
    /// The array being sorted, updated in place (`n` elements).
    pub data: Buffer,
    /// Number of elements (power of two).
    pub n: u32,
    /// Bitonic sequence size of this stage.
    pub k: u32,
    /// Partner distance of this step.
    pub j: u32,
}

impl BitonicStep {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two, the buffer is too small, or
    /// `j`/`k` are not powers of two with `j < k <= n`.
    pub fn new(data: Buffer, n: u32, k: u32, j: u32) -> Self {
        assert!(n.is_power_of_two(), "bitonic sort needs a power-of-two size");
        assert!(data.f32_len() >= n as u64, "data too small");
        assert!(k.is_power_of_two() && j.is_power_of_two(), "k and j must be powers of two");
        assert!(j < k && k <= n, "need j < k <= n");
        BitonicStep { data, n, k, j }
    }
}

impl Kernel for BitonicStep {
    fn label(&self) -> String {
        format!("BIT[{},{}]", self.k, self.j)
    }

    fn dims(&self) -> LaunchDims {
        LaunchDims::new(Dim3::linear(self.n.div_ceil(ARRAY_BLOCK)), Dim3::linear(ARRAY_BLOCK))
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for tid in 0..ARRAY_BLOCK {
            let i = block.x as u64 * ARRAY_BLOCK as u64 + tid as u64;
            if i >= self.n as u64 {
                continue;
            }
            let partner = i ^ self.j as u64;
            if partner <= i {
                continue; // the lower-index thread does the exchange
            }
            let a = ctx.ld_f32(self.data, i, tid);
            let b = ctx.ld_f32(self.data, partner, tid);
            let ascending = i & self.k as u64 == 0;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let (x, y) = if ascending { (lo, hi) } else { (hi, lo) };
            ctx.st_f32(self.data, i, x, tid);
            ctx.st_f32(self.data, partner, y, tid);
            ctx.compute(tid, 6);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("BIT:{}:{}:{}:{}", self.n, self.k, self.j, self.data.addr))
    }
}

/// The `(k, j)` pairs of a full bitonic sort of `n` elements, in launch
/// order.
pub fn bitonic_steps(n: u32) -> Vec<(u32, u32)> {
    assert!(n.is_power_of_two(), "bitonic sort needs a power-of-two size");
    let mut v = Vec::new();
    let mut k = 2u32;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            v.push((k, j));
            j /= 2;
        }
        k *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &BitonicStep, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn full_sort_orders_array() {
        let mut mem = DeviceMemory::new();
        let n = 1024u32;
        let data = mem.alloc_f32(n as u64, "data");
        // Deterministic pseudo-random fill.
        let mut x = 12345u64;
        for i in 0..n as u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            mem.write_f32(data, i, (x >> 33) as f32);
        }
        for (k, j) in bitonic_steps(n) {
            run(&BitonicStep::new(data, n, k, j), &mut mem);
        }
        let v = mem.download_f32(data);
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "array must be sorted");
    }

    #[test]
    fn step_count_is_log_squared() {
        // n = 2^m gives m*(m+1)/2 steps.
        assert_eq!(bitonic_steps(1024).len(), 10 * 11 / 2);
        assert_eq!(bitonic_steps(2), vec![(2, 1)]);
    }

    #[test]
    fn single_step_exchanges_pairs() {
        let mut mem = DeviceMemory::new();
        let data = mem.alloc_f32(4, "data");
        mem.upload_f32(data, &[3.0, 1.0, 2.0, 4.0]);
        run(&BitonicStep::new(data, 4, 2, 1), &mut mem);
        // Pair (0,1) ascending -> 1,3; pair (2,3) descending -> 4,2.
        assert_eq!(mem.download_f32(data), vec![1.0, 3.0, 4.0, 2.0]);
    }
}
