//! Compute kernels from the paper's Sec. II tiling-suitability study:
//! reduction, Hillis–Steele scan, bitonic sort, matrix multiply, transpose
//! and Black–Scholes respond well to tiling; convolution is the
//! high-locality counter-example.

mod bitonic;
mod blackscholes;
mod conv;
mod fill;
mod heat;
mod histogram;
mod matmul;
mod reduce;
mod saxpy;
mod scan;
mod transpose;

pub use bitonic::{bitonic_steps, BitonicStep};
pub use blackscholes::{black_scholes_ref, BlackScholes, RISK_FREE, VOLATILITY};
pub use conv::Convolution2D;
pub use fill::FillSeq;
pub use heat::HeatStep;
pub use histogram::Histogram;
pub use matmul::MatMul;
pub use reduce::{ReduceSum, ARRAY_BLOCK};
pub use saxpy::Saxpy;
pub use scan::{scan_steps, ScanStep};
pub use transpose::Transpose;
