//! Histogram with global atomics — exercises the atomic read-modify-write
//! path of the trace/dependency machinery. Every block may touch every
//! bin, so block dependencies against a downstream consumer are dense —
//! an example of a kernel whose *producer* side is tiling-hostile even
//! though its input side streams.

use gpu_sim::{BlockIdx, Buffer, Dim3, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use super::reduce::ARRAY_BLOCK;

/// Builds a histogram of `bins` buckets over `n` samples with
/// `atomicAdd`-style accumulation: `hist[bucket(src[i])] += 1`.
///
/// Values are bucketed by `floor(v)` clamped to `[0, bins)`. The `hist`
/// buffer must be zeroed beforehand (e.g. by an `HtD` zero upload or a
/// fill kernel).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Input samples (`n` elements).
    pub src: Buffer,
    /// Output bin counts (`bins` elements, f32 counters).
    pub hist: Buffer,
    /// Number of samples.
    pub n: u32,
    /// Number of bins.
    pub bins: u32,
}

impl Histogram {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the buffers are too small or `bins` is zero.
    pub fn new(src: Buffer, hist: Buffer, n: u32, bins: u32) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(src.f32_len() >= n as u64, "src too small");
        assert!(hist.f32_len() >= bins as u64, "hist too small");
        Histogram { src, hist, n, bins }
    }
}

impl Kernel for Histogram {
    fn label(&self) -> String {
        "HIST".into()
    }

    fn dims(&self) -> LaunchDims {
        LaunchDims::new(Dim3::linear(self.n.div_ceil(ARRAY_BLOCK)), Dim3::linear(ARRAY_BLOCK))
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for tid in 0..ARRAY_BLOCK {
            let gid = block.x as u64 * ARRAY_BLOCK as u64 + tid as u64;
            if gid >= self.n as u64 {
                continue;
            }
            let v = ctx.ld_f32(self.src, gid, tid);
            let bucket = (v.floor().max(0.0) as u64).min(self.bins as u64 - 1);
            ctx.atomic_add_f32(self.hist, bucket, 1.0, tid);
            ctx.compute(tid, 4);
        }
    }

    /// Addresses of the atomic updates depend on the sample *values*, so
    /// the kernel is not tileable (the paper's third condition).
    fn tileable(&self) -> bool {
        false
    }

    fn signature(&self) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &Histogram, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn counts_buckets() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(600, "src");
        let hist = mem.alloc_f32(4, "hist");
        for i in 0..600 {
            mem.write_f32(src, i, (i % 3) as f32);
        }
        let k = Histogram::new(src, hist, 600, 4);
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(hist, 0), 200.0);
        assert_eq!(mem.read_f32(hist, 1), 200.0);
        assert_eq!(mem.read_f32(hist, 2), 200.0);
        assert_eq!(mem.read_f32(hist, 3), 0.0);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(2, "src");
        let hist = mem.alloc_f32(2, "hist");
        mem.write_f32(src, 0, -5.0);
        mem.write_f32(src, 1, 99.0);
        let k = Histogram::new(src, hist, 2, 2);
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(hist, 0), 1.0);
        assert_eq!(mem.read_f32(hist, 1), 1.0);
    }

    #[test]
    fn histogram_is_not_tileable() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(2, "src");
        let hist = mem.alloc_f32(2, "hist");
        let k = Histogram::new(src, hist, 2, 2);
        assert!(!k.tileable());
        assert!(k.signature().is_none());
    }

    #[test]
    fn atomics_record_read_and_write_words() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(32, "src");
        let hist = mem.alloc_f32(4, "hist");
        let k = Histogram::new(src, hist, 32, 4);
        let mut rec = TraceRecorder::new(128);
        rec.begin_block(k.dims().threads_per_block());
        let mut ctx = ExecCtx::new(&mut mem, &mut rec);
        k.execute_block(BlockIdx::new(0, 0, 0, k.dims().grid), &mut ctx);
        let t = rec.finish_block();
        // The bin words appear in BOTH read and write sets (RMW).
        let bin_word = hist.f32_addr(0) >> 2;
        assert!(t.read_words.contains(&bin_word));
        assert!(t.write_words.contains(&bin_word));
    }
}
