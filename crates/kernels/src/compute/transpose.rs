//! Matrix transpose — Sec. II lists it among the tiling-friendly kernels:
//! strided writes give minimal per-thread locality, so cold misses dominate.

use gpu_sim::{BlockIdx, Buffer, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use crate::common::{grid_for, pix, pixel_threads};

/// Transposes a row-major `w`×`h` matrix: `dst[x, y] = src[y, x]` with
/// `dst` being `h` wide.
///
/// One thread per input element: one coalesced load, one strided store.
#[derive(Debug, Clone)]
pub struct Transpose {
    /// Input matrix (`w * h` elements, row-major, `w` wide).
    pub src: Buffer,
    /// Output matrix (`h * w` elements, row-major, `h` wide).
    pub dst: Buffer,
    /// Input width.
    pub w: u32,
    /// Input height.
    pub h: u32,
}

impl Transpose {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if either buffer is too small or the buffers alias.
    pub fn new(src: Buffer, dst: Buffer, w: u32, h: u32) -> Self {
        let n = w as u64 * h as u64;
        assert!(src.f32_len() >= n, "src too small");
        assert!(dst.f32_len() >= n, "dst too small");
        assert_ne!(src.id, dst.id, "in-place transpose is not supported");
        Transpose { src, dst, w, h }
    }
}

impl Kernel for Transpose {
    fn label(&self) -> String {
        "TR".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let v = ctx.ld_f32(self.src, pix(x, y, self.w), tid);
            ctx.st_f32(self.dst, pix(y, x, self.h), v, tid);
            ctx.compute(tid, 2);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("TR:{}x{}:{}:{}", self.w, self.h, self.src.addr, self.dst.addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &Transpose, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn transpose_roundtrip_is_identity() {
        let mut mem = DeviceMemory::new();
        let (w, h) = (64u32, 16u32);
        let a = mem.alloc_f32((w * h) as u64, "a");
        let b = mem.alloc_f32((w * h) as u64, "b");
        let c = mem.alloc_f32((w * h) as u64, "c");
        for i in 0..(w * h) as u64 {
            mem.write_f32(a, i, i as f32);
        }
        run(&Transpose::new(a, b, w, h), &mut mem);
        run(&Transpose::new(b, c, h, w), &mut mem);
        assert_eq!(mem.download_f32(a), mem.download_f32(c));
    }

    #[test]
    fn element_mapping() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_f32(32 * 8, "a");
        let b = mem.alloc_f32(32 * 8, "b");
        mem.write_f32(a, pix(5, 3, 32), 42.0);
        run(&Transpose::new(a, b, 32, 8), &mut mem);
        assert_eq!(mem.read_f32(b, pix(3, 5, 8)), 42.0);
    }

    #[test]
    fn strided_store_fans_out_lines() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_f32(64 * 64, "a");
        let b = mem.alloc_f32(64 * 64, "b");
        let k = Transpose::new(a, b, 64, 64);
        let mut rec = TraceRecorder::new(128);
        rec.begin_block(k.dims().threads_per_block());
        let mut ctx = ExecCtx::new(&mut mem, &mut rec);
        k.execute_block(BlockIdx::new(0, 0, 0, k.dims().grid), &mut ctx);
        let t = rec.finish_block();
        // A warp's loads coalesce to 1 line, but its stores stride across
        // 32 different rows = 32 lines: store transactions dominate.
        let w0 = &t.work.warps[0];
        let loads = w0.txns.iter().filter(|t| !t.write()).count();
        let stores = w0.txns.iter().filter(|t| t.write()).count();
        assert!(stores > 8 * loads, "loads {loads}, stores {stores}");
    }
}
