//! SAXPY — the canonical streaming BLAS-1 kernel: `y = a*x + y`.
//! A pure bandwidth-bound map with zero per-thread reuse, useful as a
//! minimal cache-sensitive pipeline stage.

use gpu_sim::{BlockIdx, Buffer, Dim3, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use super::reduce::ARRAY_BLOCK;

/// `y[i] = a * x[i] + y[i]` over `n` elements, in place on `y`.
#[derive(Debug, Clone)]
pub struct Saxpy {
    /// Input vector `x` (`n` elements).
    pub x: Buffer,
    /// Accumulator vector `y`, updated in place (`n` elements).
    pub y: Buffer,
    /// Scalar multiplier.
    pub a: f32,
    /// Number of elements.
    pub n: u32,
}

impl Saxpy {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if either buffer is too small or they alias.
    pub fn new(x: Buffer, y: Buffer, a: f32, n: u32) -> Self {
        assert!(x.f32_len() >= n as u64, "x too small");
        assert!(y.f32_len() >= n as u64, "y too small");
        assert_ne!(x.id, y.id, "x and y must be distinct");
        Saxpy { x, y, a, n }
    }
}

impl Kernel for Saxpy {
    fn label(&self) -> String {
        "SAXPY".into()
    }

    fn dims(&self) -> LaunchDims {
        LaunchDims::new(Dim3::linear(self.n.div_ceil(ARRAY_BLOCK)), Dim3::linear(ARRAY_BLOCK))
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for tid in 0..ARRAY_BLOCK {
            let gid = block.x as u64 * ARRAY_BLOCK as u64 + tid as u64;
            if gid < self.n as u64 {
                let xv = ctx.ld_f32(self.x, gid, tid);
                let yv = ctx.ld_f32(self.y, gid, tid);
                ctx.st_f32(self.y, gid, self.a * xv + yv, tid);
                ctx.compute(tid, 2);
            }
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("SAXPY:{}:{}:{}:{}", self.n, self.a, self.x.addr, self.y.addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    #[test]
    fn computes_a_x_plus_y() {
        let mut mem = DeviceMemory::new();
        let x = mem.alloc_f32(300, "x");
        let y = mem.alloc_f32(300, "y");
        for i in 0..300 {
            mem.write_f32(x, i, i as f32);
            mem.write_f32(y, i, 1.0);
        }
        let k = Saxpy::new(x, y, 2.0, 300);
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(&mut mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
        assert_eq!(mem.read_f32(y, 10), 21.0);
        assert_eq!(mem.read_f32(y, 299), 599.0);
        assert_eq!(mem.read_f32(x, 10), 10.0, "x untouched");
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn aliasing_rejected() {
        let mut mem = DeviceMemory::new();
        let x = mem.alloc_f32(4, "x");
        let _ = Saxpy::new(x, x, 1.0, 4);
    }
}
