//! 2-D convolution — the paper's *counter-example* in Sec. II: "in a kernel
//! with a high data locality per thread (e.g., a convolution filter), one
//! cold miss is followed by multiple hits; therefore, the minimum and
//! maximum hit rates are both high and the gap is small" — i.e. a poor
//! tiling candidate.

use gpu_sim::{BlockIdx, Buffer, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use crate::common::{clampi, grid_for, pix, pixel_threads};

/// 2-D convolution with a square odd-sized filter held in constant memory
/// (a Rust array, the analog of CUDA `__constant__` storage — filter reads
/// do not touch global memory).
///
/// One thread per output pixel: `taps²` loads with heavy overlap between
/// neighbouring threads, one store.
#[derive(Debug, Clone)]
pub struct Convolution2D {
    /// Input image (`w * h` elements).
    pub src: Buffer,
    /// Output image (`w * h` elements).
    pub dst: Buffer,
    /// Image width.
    pub w: u32,
    /// Image height.
    pub h: u32,
    /// Filter coefficients, row-major, `taps * taps` long.
    pub filter: Vec<f32>,
    /// Filter side length (odd).
    pub taps: u32,
}

impl Convolution2D {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is even or zero, the filter length does not match,
    /// or a buffer is too small.
    pub fn new(src: Buffer, dst: Buffer, w: u32, h: u32, filter: Vec<f32>, taps: u32) -> Self {
        assert!(taps % 2 == 1, "filter must have odd side length");
        assert_eq!(filter.len(), (taps * taps) as usize, "filter length mismatch");
        let n = w as u64 * h as u64;
        assert!(src.f32_len() >= n, "src too small");
        assert!(dst.f32_len() >= n, "dst too small");
        assert_ne!(src.id, dst.id, "in-place convolution is not supported");
        Convolution2D { src, dst, w, h, filter, taps }
    }

    /// A normalized box filter of the given side length.
    pub fn box_filter(taps: u32) -> Vec<f32> {
        vec![1.0 / (taps * taps) as f32; (taps * taps) as usize]
    }
}

impl Kernel for Convolution2D {
    fn label(&self) -> String {
        format!("CONV{}", self.taps)
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        let r = (self.taps / 2) as i64;
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let mut acc = 0.0f32;
            for fy in -r..=r {
                for fx in -r..=r {
                    let sx = clampi(x as i64 + fx, self.w);
                    let sy = clampi(y as i64 + fy, self.h);
                    let coeff = self.filter[((fy + r) * self.taps as i64 + fx + r) as usize];
                    acc += coeff * ctx.ld_f32(self.src, pix(sx, sy, self.w), tid);
                }
            }
            ctx.st_f32(self.dst, pix(x, y, self.w), acc, tid);
            ctx.compute(tid, 2 * (self.taps * self.taps) as u64);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!(
            "CONV:{}x{}:{}:{}:{}",
            self.w, self.h, self.taps, self.src.addr, self.dst.addr
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &Convolution2D, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn box_filter_preserves_constant_image() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(64 * 16, "src");
        let dst = mem.alloc_f32(64 * 16, "dst");
        for i in 0..64 * 16 {
            mem.write_f32(src, i, 3.0);
        }
        let k = Convolution2D::new(src, dst, 64, 16, Convolution2D::box_filter(5), 5);
        run(&k, &mut mem);
        for i in [0u64, 500, 1023] {
            assert!((mem.read_f32(dst, i) - 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_filter_copies() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(32 * 8, "src");
        let dst = mem.alloc_f32(32 * 8, "dst");
        for i in 0..32 * 8 {
            mem.write_f32(src, i, i as f32);
        }
        let mut filter = vec![0.0f32; 9];
        filter[4] = 1.0; // center tap
        let k = Convolution2D::new(src, dst, 32, 8, filter, 3);
        run(&k, &mut mem);
        assert_eq!(mem.download_f32(dst), mem.download_f32(src));
    }

    #[test]
    fn high_locality_means_few_txns_per_access() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(64 * 64, "src");
        let dst = mem.alloc_f32(64 * 64, "dst");
        let k = Convolution2D::new(src, dst, 64, 64, Convolution2D::box_filter(5), 5);
        let mut rec = TraceRecorder::new(128);
        rec.begin_block(k.dims().threads_per_block());
        let mut ctx = ExecCtx::new(&mut mem, &mut rec);
        k.execute_block(BlockIdx::new(1, 1, 0, k.dims().grid), &mut ctx);
        let t = rec.finish_block();
        // 25 loads per thread, but a warp's 25 load instructions touch
        // only ~2 lines each (32 consecutive pixels + halo): the distinct
        // footprint is far below 25 lines/thread.
        let per_thread_lines = t.lines.len() as f64 / 256.0;
        assert!(per_thread_lines < 1.0, "locality too low: {per_thread_lines}");
    }

    #[test]
    #[should_panic(expected = "odd side length")]
    fn even_filter_rejected() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(64, "src");
        let dst = mem.alloc_f32(64, "dst");
        let _ = Convolution2D::new(src, dst, 8, 8, vec![0.0; 16], 4);
    }
}
