//! A streaming producer kernel: fills a buffer with a deterministic
//! sequence. Used as the upstream node in pipeline experiments (the data a
//! consumer kernel would find in cache under tiling).

use gpu_sim::{BlockIdx, Buffer, Dim3, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use super::reduce::ARRAY_BLOCK;

/// Writes `dst[i] = a * i + b` for `i < n` (one coalesced store per
/// thread).
#[derive(Debug, Clone)]
pub struct FillSeq {
    /// Destination buffer (`n` `f32` elements).
    pub dst: Buffer,
    /// Number of elements.
    pub n: u32,
    /// Slope of the sequence.
    pub a: f32,
    /// Offset of the sequence.
    pub b: f32,
}

impl FillSeq {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is too small.
    pub fn new(dst: Buffer, n: u32, a: f32, b: f32) -> Self {
        assert!(dst.f32_len() >= n as u64, "dst too small");
        FillSeq { dst, n, a, b }
    }
}

impl Kernel for FillSeq {
    fn label(&self) -> String {
        "FILL".into()
    }

    fn dims(&self) -> LaunchDims {
        LaunchDims::new(Dim3::linear(self.n.div_ceil(ARRAY_BLOCK)), Dim3::linear(ARRAY_BLOCK))
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for tid in 0..ARRAY_BLOCK {
            let gid = block.x as u64 * ARRAY_BLOCK as u64 + tid as u64;
            if gid < self.n as u64 {
                ctx.st_f32(self.dst, gid, self.a * gid as f32 + self.b, tid);
                ctx.compute(tid, 2);
            }
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("FILL:{}:{}:{}:{}", self.n, self.dst.addr, self.a, self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    #[test]
    fn fills_linear_sequence() {
        let mut mem = DeviceMemory::new();
        let dst = mem.alloc_f32(300, "d");
        let k = FillSeq::new(dst, 300, 2.0, 1.0);
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(&mut mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
        assert_eq!(mem.read_f32(dst, 0), 1.0);
        assert_eq!(mem.read_f32(dst, 299), 599.0);
    }
}
