//! Block-level sum reduction — one of the kernels the paper lists as
//! responding well to tiling (Sec. II): one cold load per element, no reuse.

use gpu_sim::{BlockIdx, Buffer, Dim3, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

/// Threads per block for the 1-D array kernels in this module.
pub const ARRAY_BLOCK: u32 = 256;

/// Sums each 256-element chunk of `src` into one element of `partials`
/// (the first stage of a classic tree reduction; chain two instances to
/// reduce to a scalar).
///
/// Each thread loads one element; lane 0 stores the block sum. Per-thread
/// data locality is minimal, so the cache-hit-rate gap between the default
/// and the minimum grid is large — the paper's first tiling condition.
#[derive(Debug, Clone)]
pub struct ReduceSum {
    /// Input array (`n` elements).
    pub src: Buffer,
    /// Output partial sums (`ceil(n / 256)` elements).
    pub partials: Buffer,
    /// Number of input elements.
    pub n: u32,
}

impl ReduceSum {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the buffers are too small or `n` is zero.
    pub fn new(src: Buffer, partials: Buffer, n: u32) -> Self {
        assert!(n > 0, "empty reduction");
        assert!(src.f32_len() >= n as u64, "src too small");
        assert!(partials.f32_len() >= n.div_ceil(ARRAY_BLOCK) as u64, "partials too small");
        ReduceSum { src, partials, n }
    }
}

impl Kernel for ReduceSum {
    fn label(&self) -> String {
        "RED".into()
    }

    fn dims(&self) -> LaunchDims {
        LaunchDims::new(Dim3::linear(self.n.div_ceil(ARRAY_BLOCK)), Dim3::linear(ARRAY_BLOCK))
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        let mut sum = 0.0f32;
        for tid in 0..ARRAY_BLOCK {
            let gid = block.x as u64 * ARRAY_BLOCK as u64 + tid as u64;
            if gid < self.n as u64 {
                sum += ctx.ld_f32(self.src, gid, tid);
                // log2(256) shared-memory tree steps amortized per thread.
                ctx.compute(tid, 8);
            }
        }
        ctx.st_f32(self.partials, block.x as u64, sum, 0);
    }

    fn signature(&self) -> Option<String> {
        Some(format!("RED:{}:{}:{}", self.n, self.src.addr, self.partials.addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &ReduceSum, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn sums_each_chunk() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(512, "src");
        let out = mem.alloc_f32(2, "out");
        for i in 0..512 {
            mem.write_f32(src, i, 1.0);
        }
        let k = ReduceSum::new(src, out, 512);
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(out, 0), 256.0);
        assert_eq!(mem.read_f32(out, 1), 256.0);
    }

    #[test]
    fn handles_partial_tail_block() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(300, "src");
        let out = mem.alloc_f32(2, "out");
        for i in 0..300 {
            mem.write_f32(src, i, 2.0);
        }
        let k = ReduceSum::new(src, out, 300);
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(out, 0), 512.0);
        assert_eq!(mem.read_f32(out, 1), 88.0); // 44 remaining * 2.0
    }

    #[test]
    fn two_stage_reduction_to_scalar() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(65536, "src");
        let p1 = mem.alloc_f32(256, "p1");
        let p2 = mem.alloc_f32(1, "p2");
        for i in 0..65536 {
            mem.write_f32(src, i, 0.5);
        }
        run(&ReduceSum::new(src, p1, 65536), &mut mem);
        run(&ReduceSum::new(p1, p2, 256), &mut mem);
        assert_eq!(mem.read_f32(p2, 0), 32768.0);
    }
}
