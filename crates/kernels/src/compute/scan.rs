//! Hillis–Steele inclusive scan — listed in Sec. II as a kernel with *low*
//! per-thread data locality that responds well to tiling: each step is a
//! separate kernel reading the whole previous array.

use gpu_sim::{BlockIdx, Buffer, Dim3, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use super::reduce::ARRAY_BLOCK;

/// One Hillis–Steele step: `dst[i] = src[i] + src[i - offset]` for
/// `i >= offset`, else `dst[i] = src[i]`.
///
/// Chaining steps with `offset = 1, 2, 4, …` while ping-ponging `src`/`dst`
/// computes the inclusive prefix sum; [`scan_steps`] builds the chain
/// description. Early steps have *local* block dependencies (block `b`
/// depends on blocks `b` and `b-1` of the previous step), which is exactly
/// the structure KTILER exploits; late steps reach far across the array.
#[derive(Debug, Clone)]
pub struct ScanStep {
    /// Input array (`n` elements).
    pub src: Buffer,
    /// Output array (`n` elements).
    pub dst: Buffer,
    /// Number of elements.
    pub n: u32,
    /// Distance of the partner element.
    pub offset: u32,
}

impl ScanStep {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the buffers are too small, `offset` is zero, or the
    /// buffers alias.
    pub fn new(src: Buffer, dst: Buffer, n: u32, offset: u32) -> Self {
        assert!(offset > 0, "offset must be positive");
        assert!(src.f32_len() >= n as u64, "src too small");
        assert!(dst.f32_len() >= n as u64, "dst too small");
        assert_ne!(src.id, dst.id, "scan steps need ping-pong buffers");
        ScanStep { src, dst, n, offset }
    }
}

impl Kernel for ScanStep {
    fn label(&self) -> String {
        format!("SCAN[{}]", self.offset)
    }

    fn dims(&self) -> LaunchDims {
        LaunchDims::new(Dim3::linear(self.n.div_ceil(ARRAY_BLOCK)), Dim3::linear(ARRAY_BLOCK))
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for tid in 0..ARRAY_BLOCK {
            let gid = block.x as u64 * ARRAY_BLOCK as u64 + tid as u64;
            if gid >= self.n as u64 {
                continue;
            }
            let v = ctx.ld_f32(self.src, gid, tid);
            let out = if gid >= self.offset as u64 {
                v + ctx.ld_f32(self.src, gid - self.offset as u64, tid)
            } else {
                v
            };
            ctx.st_f32(self.dst, gid, out, tid);
            ctx.compute(tid, 3);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("SCAN:{}:{}:{}:{}", self.n, self.offset, self.src.addr, self.dst.addr))
    }
}

/// The offsets of a full Hillis–Steele scan over `n` elements:
/// `1, 2, 4, …` while `offset < n`.
pub fn scan_steps(n: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut o = 1u32;
    while o < n {
        v.push(o);
        o = o.saturating_mul(2);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &ScanStep, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn full_scan_of_ones_is_iota() {
        let mut mem = DeviceMemory::new();
        let n = 1024u32;
        let a = mem.alloc_f32(n as u64, "a");
        let b = mem.alloc_f32(n as u64, "b");
        for i in 0..n as u64 {
            mem.write_f32(a, i, 1.0);
        }
        let mut bufs = (a, b);
        for offset in scan_steps(n) {
            let k = ScanStep::new(bufs.0, bufs.1, n, offset);
            run(&k, &mut mem);
            bufs = (bufs.1, bufs.0);
        }
        let result = bufs.0;
        for i in [0u64, 1, 100, 1023] {
            assert_eq!(mem.read_f32(result, i), (i + 1) as f32);
        }
    }

    #[test]
    fn steps_double_until_n() {
        assert_eq!(scan_steps(8), vec![1, 2, 4]);
        assert_eq!(scan_steps(1000), vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512]);
        assert!(scan_steps(1).is_empty());
    }

    #[test]
    fn single_step_adds_partner() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_f32(8, "a");
        let b = mem.alloc_f32(8, "b");
        for i in 0..8 {
            mem.write_f32(a, i, i as f32);
        }
        run(&ScanStep::new(a, b, 8, 2), &mut mem);
        assert_eq!(mem.read_f32(b, 0), 0.0);
        assert_eq!(mem.read_f32(b, 1), 1.0);
        assert_eq!(mem.read_f32(b, 5), 8.0); // 5 + 3
    }
}
