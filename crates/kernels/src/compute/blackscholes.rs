//! Black–Scholes option pricing — the last kernel Sec. II lists as
//! responding well to tiling: a pure streaming map (one cold load per
//! input element, zero reuse), usually chained after a data-generation or
//! preprocessing kernel.

use gpu_sim::{BlockIdx, Buffer, Dim3, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use super::reduce::ARRAY_BLOCK;

/// Prices European call and put options with the Black–Scholes closed form.
///
/// Inputs are three arrays (spot price, strike, time to expiry); outputs are
/// the call and put premia. Rate and volatility are compile-time constants,
/// as in the CUDA SDK sample. One thread per option: 3 loads, 2 stores and
/// a long ALU sequence (the kernel is compute-heavy but still memory-bound
/// at full occupancy because of the 5 streaming accesses).
#[derive(Debug, Clone)]
pub struct BlackScholes {
    /// Spot prices (`n` elements).
    pub price: Buffer,
    /// Strikes (`n` elements).
    pub strike: Buffer,
    /// Times to expiry in years (`n` elements).
    pub years: Buffer,
    /// Output call premia (`n` elements).
    pub call: Buffer,
    /// Output put premia (`n` elements).
    pub put: Buffer,
    /// Number of options.
    pub n: u32,
}

/// Risk-free rate used by the kernel (matches the CUDA SDK sample).
pub const RISK_FREE: f32 = 0.02;
/// Volatility used by the kernel (matches the CUDA SDK sample).
pub const VOLATILITY: f32 = 0.30;

fn cnd(d: f32) -> f32 {
    // Abramowitz–Stegun polynomial approximation of the cumulative normal
    // distribution, as used by the CUDA SDK BlackScholes sample.
    const A1: f32 = 0.31938153;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_5;
    let k = 1.0 / (1.0 + 0.2316419 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let approx = 1.0 - (-0.5 * d * d).exp() * poly / (2.0 * std::f32::consts::PI).sqrt();
    if d >= 0.0 {
        approx
    } else {
        1.0 - approx
    }
}

/// Reference scalar Black–Scholes (used by the kernel and by tests).
pub fn black_scholes_ref(s: f32, x: f32, t: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 =
        ((s / x).ln() + (RISK_FREE + 0.5 * VOLATILITY * VOLATILITY) * t) / (VOLATILITY * sqrt_t);
    let d2 = d1 - VOLATILITY * sqrt_t;
    let exp_rt = (-RISK_FREE * t).exp();
    let call = s * cnd(d1) - x * exp_rt * cnd(d2);
    let put = x * exp_rt * cnd(-d2) - s * cnd(-d1);
    (call, put)
}

impl BlackScholes {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is too small.
    pub fn new(
        price: Buffer,
        strike: Buffer,
        years: Buffer,
        call: Buffer,
        put: Buffer,
        n: u32,
    ) -> Self {
        for (b, name) in
            [(price, "price"), (strike, "strike"), (years, "years"), (call, "call"), (put, "put")]
        {
            assert!(b.f32_len() >= n as u64, "{name} buffer too small");
        }
        BlackScholes { price, strike, years, call, put, n }
    }
}

impl Kernel for BlackScholes {
    fn label(&self) -> String {
        "BS".into()
    }

    fn dims(&self) -> LaunchDims {
        LaunchDims::new(Dim3::linear(self.n.div_ceil(ARRAY_BLOCK)), Dim3::linear(ARRAY_BLOCK))
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for tid in 0..ARRAY_BLOCK {
            let gid = block.x as u64 * ARRAY_BLOCK as u64 + tid as u64;
            if gid >= self.n as u64 {
                continue;
            }
            let s = ctx.ld_f32(self.price, gid, tid);
            let x = ctx.ld_f32(self.strike, gid, tid);
            let t = ctx.ld_f32(self.years, gid, tid);
            let (call, put) = black_scholes_ref(s, x, t);
            ctx.st_f32(self.call, gid, call, tid);
            ctx.st_f32(self.put, gid, put, tid);
            ctx.compute(tid, 60);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!(
            "BS:{}:{}:{}:{}:{}:{}",
            self.n,
            self.price.addr,
            self.strike.addr,
            self.years.addr,
            self.call.addr,
            self.put.addr
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-5);
        assert!(cnd(4.0) > 0.9999);
        assert!(cnd(-4.0) < 0.0001);
        // Symmetry.
        assert!((cnd(1.3) + cnd(-1.3) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn put_call_parity_holds() {
        let (s, x, t) = (100.0f32, 95.0f32, 0.5f32);
        let (call, put) = black_scholes_ref(s, x, t);
        // C - P = S - X * exp(-rT)
        let lhs = call - put;
        let rhs = s - x * (-RISK_FREE * t).exp();
        assert!((lhs - rhs).abs() < 1e-3, "parity violated: {lhs} vs {rhs}");
    }

    #[test]
    fn kernel_matches_reference() {
        let mut mem = DeviceMemory::new();
        let n = 300u32;
        let bufs: Vec<Buffer> =
            ["p", "x", "t", "c", "q"].iter().map(|s| mem.alloc_f32(n as u64, s)).collect();
        for i in 0..n as u64 {
            mem.write_f32(bufs[0], i, 50.0 + i as f32 * 0.3);
            mem.write_f32(bufs[1], i, 60.0);
            mem.write_f32(bufs[2], i, 0.25 + (i % 10) as f32 * 0.1);
        }
        let k = BlackScholes::new(bufs[0], bufs[1], bufs[2], bufs[3], bufs[4], n);
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(&mut mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
        for i in [0u64, 150, 299] {
            let s = mem.read_f32(bufs[0], i);
            let t = mem.read_f32(bufs[2], i);
            let (c_ref, p_ref) = black_scholes_ref(s, 60.0, t);
            assert_eq!(mem.read_f32(bufs[3], i), c_ref);
            assert_eq!(mem.read_f32(bufs[4], i), p_ref);
        }
    }
}
