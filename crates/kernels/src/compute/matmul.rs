//! Dense matrix multiply — Sec. II lists "matrix multiplication on arrays
//! with special dimensions" (e.g. a tall-skinny product whose shared operand
//! fits in the L2) among the tiling-friendly kernels.

use gpu_sim::{BlockIdx, Buffer, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use crate::common::{grid_for, pixel_threads};

/// Naive dense matrix multiply `C = A × B` with one thread per output
/// element (`A` is `m×k`, `B` is `k×n`, `C` is `m×n`, all row-major).
///
/// Every thread streams a row of `A` and a column of `B`; when `B` is small
/// (the "special dimensions" case) it is fully reused across threads and
/// lives in the cache.
#[derive(Debug, Clone)]
pub struct MatMul {
    /// Left operand (`m * k` elements, row-major).
    pub a: Buffer,
    /// Right operand (`k * n` elements, row-major).
    pub b: Buffer,
    /// Output (`m * n` elements, row-major).
    pub c: Buffer,
    /// Rows of `A` and `C`.
    pub m: u32,
    /// Inner dimension.
    pub k: u32,
    /// Columns of `B` and `C`.
    pub n: u32,
}

impl MatMul {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is too small or a dimension is zero.
    pub fn new(a: Buffer, b: Buffer, c: Buffer, m: u32, k: u32, n: u32) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "dimensions must be non-zero");
        assert!(a.f32_len() >= m as u64 * k as u64, "a too small");
        assert!(b.f32_len() >= k as u64 * n as u64, "b too small");
        assert!(c.f32_len() >= m as u64 * n as u64, "c too small");
        MatMul { a, b, c, m, k, n }
    }
}

impl Kernel for MatMul {
    fn label(&self) -> String {
        "MM".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.n, self.m)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, col, row) in pixel_threads(block, self.n, self.m) {
            let mut acc = 0.0f32;
            for i in 0..self.k as u64 {
                let av = ctx.ld_f32(self.a, row as u64 * self.k as u64 + i, tid);
                let bv = ctx.ld_f32(self.b, i * self.n as u64 + col as u64, tid);
                acc += av * bv;
            }
            ctx.st_f32(self.c, row as u64 * self.n as u64 + col as u64, acc, tid);
            ctx.compute(tid, 2 * self.k as u64);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!(
            "MM:{}x{}x{}:{}:{}:{}",
            self.m, self.k, self.n, self.a.addr, self.b.addr, self.c.addr
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &MatMul, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn identity_times_matrix() {
        let mut mem = DeviceMemory::new();
        let m = 8u32;
        let a = mem.alloc_f32((m * m) as u64, "a");
        let b = mem.alloc_f32((m * m) as u64, "b");
        let c = mem.alloc_f32((m * m) as u64, "c");
        for i in 0..m as u64 {
            mem.write_f32(a, i * m as u64 + i, 1.0);
        }
        for i in 0..(m * m) as u64 {
            mem.write_f32(b, i, i as f32);
        }
        let k = MatMul::new(a, b, c, m, m, m);
        run(&k, &mut mem);
        assert_eq!(mem.download_f32(c), mem.download_f32(b));
    }

    #[test]
    fn known_small_product() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_f32(2 * 3, "a");
        let b = mem.alloc_f32(3 * 2, "b");
        let c = mem.alloc_f32(2 * 2, "c");
        mem.upload_f32(a, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // 2x3
        mem.upload_f32(b, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]); // 3x2
        let k = MatMul::new(a, b, c, 2, 3, 2);
        run(&k, &mut mem);
        assert_eq!(mem.download_f32(c), vec![58.0, 64.0, 139.0, 154.0]);
    }
}
