//! Explicit heat-diffusion step — a 5-point stencil iterated as a kernel
//! chain, structurally identical to the Jacobi chain the paper tiles: each
//! step is a separate kernel with local block dependencies on the previous
//! step, making deep chains an ideal KTILER workload beyond the
//! optical-flow application.

use gpu_sim::{BlockIdx, Buffer, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use crate::common::{clampi, grid_for, pix, pixel_threads};

/// One explicit Euler step of 2-D heat diffusion:
/// `out = in + alpha * (laplacian of in)` with replicate borders.
///
/// Stability requires `alpha <= 0.25`.
#[derive(Debug, Clone)]
pub struct HeatStep {
    /// Input temperature field (`w * h` elements).
    pub src: Buffer,
    /// Output temperature field (`w * h` elements).
    pub dst: Buffer,
    /// Field width.
    pub w: u32,
    /// Field height.
    pub h: u32,
    /// Diffusion coefficient times the step size.
    pub alpha: f32,
}

impl HeatStep {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if a buffer is too small, the buffers alias, or `alpha` is
    /// outside the stable range `(0, 0.25]`.
    pub fn new(src: Buffer, dst: Buffer, w: u32, h: u32, alpha: f32) -> Self {
        let n = w as u64 * h as u64;
        assert!(src.f32_len() >= n, "src too small");
        assert!(dst.f32_len() >= n, "dst too small");
        assert_ne!(src.id, dst.id, "heat steps need ping-pong buffers");
        assert!(alpha > 0.0 && alpha <= 0.25, "alpha must be in (0, 0.25] for stability");
        HeatStep { src, dst, w, h, alpha }
    }
}

impl Kernel for HeatStep {
    fn label(&self) -> String {
        "HEAT".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let c = ctx.ld_f32(self.src, pix(x, y, self.w), tid);
            let l = ctx.ld_f32(self.src, pix(clampi(x as i64 - 1, self.w), y, self.w), tid);
            let r = ctx.ld_f32(self.src, pix(clampi(x as i64 + 1, self.w), y, self.w), tid);
            let u = ctx.ld_f32(self.src, pix(x, clampi(y as i64 - 1, self.h), self.w), tid);
            let d = ctx.ld_f32(self.src, pix(x, clampi(y as i64 + 1, self.h), self.w), tid);
            let out = c + self.alpha * (l + r + u + d - 4.0 * c);
            ctx.st_f32(self.dst, pix(x, y, self.w), out, tid);
            ctx.compute(tid, 8);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!(
            "HEAT:{}x{}:{}:{}:{}",
            self.w, self.h, self.alpha, self.src.addr, self.dst.addr
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &HeatStep, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn uniform_field_is_steady_state() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_f32(64 * 16, "a");
        let b = mem.alloc_f32(64 * 16, "b");
        for i in 0..64 * 16 {
            mem.write_f32(a, i, 7.0);
        }
        run(&HeatStep::new(a, b, 64, 16, 0.25), &mut mem);
        for i in [0u64, 100, 1023] {
            assert_eq!(mem.read_f32(b, i), 7.0);
        }
    }

    #[test]
    fn hot_spot_diffuses_and_conserves_energy() {
        let mut mem = DeviceMemory::new();
        let (w, h) = (32u32, 32u32);
        let a = mem.alloc_f32((w * h) as u64, "a");
        let b = mem.alloc_f32((w * h) as u64, "b");
        mem.write_f32(a, pix(16, 16, w), 100.0);
        run(&HeatStep::new(a, b, w, h, 0.25), &mut mem);
        let spot = mem.read_f32(b, pix(16, 16, w));
        let neighbor = mem.read_f32(b, pix(17, 16, w));
        assert!(spot < 100.0, "peak must decay: {spot}");
        assert!(neighbor > 0.0, "heat must spread: {neighbor}");
        // Interior diffusion conserves total heat.
        let total: f64 = mem.download_f32(b).iter().map(|&v| v as f64).sum();
        assert!((total - 100.0).abs() < 1e-3, "total heat {total}");
    }

    #[test]
    fn chain_converges_toward_mean() {
        let mut mem = DeviceMemory::new();
        let (w, h) = (16u32, 8u32);
        let a = mem.alloc_f32((w * h) as u64, "a");
        let b = mem.alloc_f32((w * h) as u64, "b");
        for x in 0..w {
            for y in 0..h {
                mem.write_f32(a, pix(x, y, w), if x < w / 2 { 0.0 } else { 10.0 });
            }
        }
        let mut bufs = (a, b);
        for _ in 0..300 {
            run(&HeatStep::new(bufs.0, bufs.1, w, h, 0.25), &mut mem);
            bufs = (bufs.1, bufs.0);
        }
        let v = mem.download_f32(bufs.0);
        let spread = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - v.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(spread < 2.0, "field must smooth out: spread {spread}");
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!((mean - 5.0).abs() < 1e-3, "mean preserved: {mean}");
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn unstable_alpha_rejected() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_f32(64, "a");
        let b = mem.alloc_f32(64, "b");
        let _ = HeatStep::new(a, b, 8, 8, 0.3);
    }
}
