//! Resolution-changing kernels: `DS` (downscale) and `US` (upscale) of the
//! HSOpticalFlow DFG.

use gpu_sim::{AffineAccess, AffineSummary, AxisMap, BlockIdx, Buffer, LaunchDims};
use kgraph::{Kernel, StructuralSig};
use trace::ExecCtx;

use crate::common::{clampi, grid_for, pix, pixel_threads};

/// Downscales an `f32` image by 2× in each dimension by averaging 2×2
/// input quads (the `DS` node of Fig. 4, and kernel `B` of the paper's
/// motivational example).
///
/// One thread per *output* pixel: four loads, one store.
#[derive(Debug, Clone)]
pub struct Downscale {
    /// Input image (`w * h` elements).
    pub src: Buffer,
    /// Output image (`(w/2) * (h/2)` elements).
    pub dst: Buffer,
    /// Input width (must be even).
    pub w: u32,
    /// Input height (must be even).
    pub h: u32,
}

impl Downscale {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the input dimensions are not even or the buffers are too
    /// small.
    pub fn new(src: Buffer, dst: Buffer, w: u32, h: u32) -> Self {
        assert!(
            w.is_multiple_of(2) && h.is_multiple_of(2),
            "downscale input must have even dimensions"
        );
        assert!(src.f32_len() >= w as u64 * h as u64, "src too small");
        assert!(dst.f32_len() >= (w as u64 / 2) * (h as u64 / 2), "dst too small");
        Downscale { src, dst, w, h }
    }

    /// Output width.
    pub fn out_w(&self) -> u32 {
        self.w / 2
    }

    /// Output height.
    pub fn out_h(&self) -> u32 {
        self.h / 2
    }
}

impl Kernel for Downscale {
    fn label(&self) -> String {
        "DS".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.out_w(), self.out_h())
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        let (ow, oh) = (self.out_w(), self.out_h());
        for (tid, x, y) in pixel_threads(block, ow, oh) {
            let (sx, sy) = (2 * x, 2 * y);
            let a = ctx.ld_f32(self.src, pix(sx, sy, self.w), tid);
            let b = ctx.ld_f32(self.src, pix(sx + 1, sy, self.w), tid);
            let c = ctx.ld_f32(self.src, pix(sx, sy + 1, self.w), tid);
            let d = ctx.ld_f32(self.src, pix(sx + 1, sy + 1, self.w), tid);
            ctx.st_f32(self.dst, pix(x, y, ow), 0.25 * (a + b + c + d), tid);
            ctx.compute(tid, 6);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("DS:{}x{}:{}:{}", self.w, self.h, self.src.addr, self.dst.addr))
    }

    fn structural_signature(&self) -> Option<StructuralSig> {
        Some(StructuralSig {
            class: format!("DS:{}x{}", self.w, self.h),
            roles: vec![self.src, self.dst],
        })
    }

    fn affine_summary(&self) -> Option<AffineSummary> {
        let (ow, oh) = (self.out_w(), self.out_h());
        // Source column/row of the quad's top-left corner: 2x (2y).
        let even = |max: u32| AxisMap { mul: 2, add: 0, div: 1, max };
        let odd = |max: u32| AxisMap { mul: 2, add: 1, div: 1, max };
        Some(AffineSummary {
            domain: (ow, oh),
            accesses: vec![
                AffineAccess::load_f32(self.src, self.w, even(self.w), even(self.h)),
                AffineAccess::load_f32(self.src, self.w, odd(self.w), even(self.h)),
                AffineAccess::load_f32(self.src, self.w, even(self.w), odd(self.h)),
                AffineAccess::load_f32(self.src, self.w, odd(self.w), odd(self.h)),
                AffineAccess::store_f32(self.dst, ow, AxisMap::identity(ow), AxisMap::identity(oh)),
            ],
            compute_cycles: 6,
        })
    }
}

/// Upscales an `f32` field by 2× in each dimension with bilinear
/// interpolation, multiplying values by a constant (the `US` node of
/// Fig. 4: optical-flow vectors are scaled by 2 when moving to a finer
/// pyramid level).
///
/// One thread per *output* pixel: four loads, one store.
#[derive(Debug, Clone)]
pub struct Upscale {
    /// Input field (`w * h` elements, the coarse level).
    pub src: Buffer,
    /// Output field (`2w * 2h` elements, the fine level).
    pub dst: Buffer,
    /// Input width.
    pub w: u32,
    /// Input height.
    pub h: u32,
    /// Multiplier applied to interpolated values (2.0 for flow fields).
    pub scale: f32,
}

impl Upscale {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the buffers are too small.
    pub fn new(src: Buffer, dst: Buffer, w: u32, h: u32, scale: f32) -> Self {
        assert!(src.f32_len() >= w as u64 * h as u64, "src too small");
        assert!(dst.f32_len() >= 4 * w as u64 * h as u64, "dst too small");
        Upscale { src, dst, w, h, scale }
    }
}

impl Kernel for Upscale {
    fn label(&self) -> String {
        "US".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(2 * self.w, 2 * self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        let (ow, oh) = (2 * self.w, 2 * self.h);
        for (tid, x, y) in pixel_threads(block, ow, oh) {
            // Source coordinate of the output pixel center.
            let fx = (x as f32 + 0.5) / 2.0 - 0.5;
            let fy = (y as f32 + 0.5) / 2.0 - 0.5;
            let x0 = fx.floor() as i64;
            let y0 = fy.floor() as i64;
            let ax = fx - x0 as f32;
            let ay = fy - y0 as f32;
            let (x0c, x1c) = (clampi(x0, self.w), clampi(x0 + 1, self.w));
            let (y0c, y1c) = (clampi(y0, self.h), clampi(y0 + 1, self.h));
            let p00 = ctx.ld_f32(self.src, pix(x0c, y0c, self.w), tid);
            let p10 = ctx.ld_f32(self.src, pix(x1c, y0c, self.w), tid);
            let p01 = ctx.ld_f32(self.src, pix(x0c, y1c, self.w), tid);
            let p11 = ctx.ld_f32(self.src, pix(x1c, y1c, self.w), tid);
            let v = (1.0 - ax) * (1.0 - ay) * p00
                + ax * (1.0 - ay) * p10
                + (1.0 - ax) * ay * p01
                + ax * ay * p11;
            ctx.st_f32(self.dst, pix(x, y, ow), self.scale * v, tid);
            ctx.compute(tid, 12);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("US:{}x{}:{}:{}:{}", self.w, self.h, self.src.addr, self.dst.addr, self.scale))
    }

    fn structural_signature(&self) -> Option<StructuralSig> {
        Some(StructuralSig {
            class: format!("US:{}x{}", self.w, self.h),
            roles: vec![self.src, self.dst],
        })
    }

    fn affine_summary(&self) -> Option<AffineSummary> {
        let (ow, oh) = (2 * self.w, 2 * self.h);
        // floor((c + 0.5) / 2 - 0.5) = floor((c - 1) / 2): the left/top
        // sample; the right/bottom one is that plus 1 = floor((c + 1) / 2).
        let lo = |max: u32| AxisMap { mul: 1, add: -1, div: 2, max };
        let hi = |max: u32| AxisMap { mul: 1, add: 1, div: 2, max };
        Some(AffineSummary {
            domain: (ow, oh),
            accesses: vec![
                AffineAccess::load_f32(self.src, self.w, lo(self.w), lo(self.h)),
                AffineAccess::load_f32(self.src, self.w, hi(self.w), lo(self.h)),
                AffineAccess::load_f32(self.src, self.w, lo(self.w), hi(self.h)),
                AffineAccess::load_f32(self.src, self.w, hi(self.w), hi(self.h)),
                AffineAccess::store_f32(self.dst, ow, AxisMap::identity(ow), AxisMap::identity(oh)),
            ],
            compute_cycles: 12,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run<K: Kernel>(k: &K, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn downscale_averages_quads() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(64 * 16, "src");
        let dst = mem.alloc_f32(32 * 8, "dst");
        // Quad at output (1,1): inputs (2,2),(3,2),(2,3),(3,3) = 1,2,3,4.
        mem.write_f32(src, pix(2, 2, 64), 1.0);
        mem.write_f32(src, pix(3, 2, 64), 2.0);
        mem.write_f32(src, pix(2, 3, 64), 3.0);
        mem.write_f32(src, pix(3, 3, 64), 4.0);
        let k = Downscale::new(src, dst, 64, 16);
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(dst, pix(1, 1, 32)), 2.5);
        assert_eq!(mem.read_f32(dst, pix(0, 0, 32)), 0.0);
    }

    #[test]
    fn downscale_halves_grid() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(256 * 256, "src");
        let dst = mem.alloc_f32(128 * 128, "dst");
        let k = Downscale::new(src, dst, 256, 256);
        // Fig. 1: kernel B over the 128x128 output = 4x16 grid of 32x8.
        assert_eq!((k.dims().grid.x, k.dims().grid.y), (4, 16));
    }

    #[test]
    fn upscale_constant_field_scales_values() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(16 * 8, "src");
        let dst = mem.alloc_f32(32 * 16, "dst");
        for i in 0..16 * 8 {
            mem.write_f32(src, i, 3.0);
        }
        let k = Upscale::new(src, dst, 16, 8, 2.0);
        run(&k, &mut mem);
        // Constant field: interpolation is exact, scaled by 2.
        for i in [0u64, 17, 100, 32 * 16 - 1] {
            assert!((mem.read_f32(dst, i) - 6.0).abs() < 1e-6);
        }
    }

    #[test]
    fn upscale_interpolates_gradient() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(4 * 4, "src");
        let dst = mem.alloc_f32(8 * 8, "dst");
        // Horizontal ramp 0,1,2,3.
        for y in 0..4 {
            for x in 0..4 {
                mem.write_f32(src, pix(x, y, 4), x as f32);
            }
        }
        let k = Upscale::new(src, dst, 4, 4, 1.0);
        run(&k, &mut mem);
        // Output x=2 maps to source fx = (2.5/2)-0.5 = 0.75 -> value 0.75.
        let v = mem.read_f32(dst, pix(2, 4, 8));
        assert!((v - 0.75).abs() < 1e-6, "v = {v}");
    }

    #[test]
    fn downscale_affine_summary_reproduces_recorded_traces() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(100 * 26, "src");
        let dst = mem.alloc_f32(50 * 13, "dst");
        let k = Downscale::new(src, dst, 100, 26);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    fn upscale_affine_summary_reproduces_recorded_traces() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(25 * 7, "src");
        let dst = mem.alloc_f32(50 * 14, "dst");
        let k = Upscale::new(src, dst, 25, 7, 2.0);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn downscale_rejects_odd() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(15 * 8, "src");
        let dst = mem.alloc_f32(7 * 4, "dst");
        let _ = Downscale::new(src, dst, 15, 8);
    }
}
