//! Image warping — the `WP` node of the HSOpticalFlow DFG.

use gpu_sim::{BlockIdx, Buffer, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use crate::common::{clampi, grid_for, pix, pixel_threads};

/// Warps an image by a flow field: `out(x, y) = bilinear(src, x + u(x,y),
/// y + v(x,y))`.
///
/// The addresses this kernel reads from `src` depend on the *values* of the
/// flow field, so its block dependencies are input-dependent — it violates
/// the paper's third tiling condition and reports
/// [`tileable`](Kernel::tileable)` == false` (KTILER zeroes its input edge
/// weights and never splits it).
#[derive(Debug, Clone)]
pub struct WarpImage {
    /// Image to sample (`w * h` elements).
    pub src: Buffer,
    /// Horizontal flow component (`w * h` elements).
    pub u: Buffer,
    /// Vertical flow component (`w * h` elements).
    pub v: Buffer,
    /// Warped output (`w * h` elements).
    pub dst: Buffer,
    /// Image width.
    pub w: u32,
    /// Image height.
    pub h: u32,
}

impl WarpImage {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is too small.
    pub fn new(src: Buffer, u: Buffer, v: Buffer, dst: Buffer, w: u32, h: u32) -> Self {
        let n = w as u64 * h as u64;
        for (b, name) in [(src, "src"), (u, "u"), (v, "v"), (dst, "dst")] {
            assert!(b.f32_len() >= n, "{name} buffer too small");
        }
        WarpImage { src, u, v, dst, w, h }
    }
}

impl Kernel for WarpImage {
    fn label(&self) -> String {
        "WP".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let i = pix(x, y, self.w);
            let du = ctx.ld_f32(self.u, i, tid);
            let dv = ctx.ld_f32(self.v, i, tid);
            let fx = x as f32 + du;
            let fy = y as f32 + dv;
            let x0 = fx.floor() as i64;
            let y0 = fy.floor() as i64;
            let ax = fx - x0 as f32;
            let ay = fy - y0 as f32;
            let (x0c, x1c) = (clampi(x0, self.w), clampi(x0 + 1, self.w));
            let (y0c, y1c) = (clampi(y0, self.h), clampi(y0 + 1, self.h));
            let p00 = ctx.ld_f32(self.src, pix(x0c, y0c, self.w), tid);
            let p10 = ctx.ld_f32(self.src, pix(x1c, y0c, self.w), tid);
            let p01 = ctx.ld_f32(self.src, pix(x0c, y1c, self.w), tid);
            let p11 = ctx.ld_f32(self.src, pix(x1c, y1c, self.w), tid);
            let val = (1.0 - ax) * (1.0 - ay) * p00
                + ax * (1.0 - ay) * p10
                + (1.0 - ax) * ay * p01
                + ax * ay * p11;
            ctx.st_f32(self.dst, i, val, tid);
            ctx.compute(tid, 20);
        }
    }

    /// Not tileable: sampled addresses depend on flow values.
    fn tileable(&self) -> bool {
        false
    }

    /// No signature: the trace is input-dependent and must be re-recorded
    /// for every instance.
    fn signature(&self) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &WarpImage, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    fn setup(w: u32, h: u32) -> (DeviceMemory, WarpImage) {
        let mut mem = DeviceMemory::new();
        let n = w as u64 * h as u64;
        let src = mem.alloc_f32(n, "src");
        let u = mem.alloc_f32(n, "u");
        let v = mem.alloc_f32(n, "v");
        let dst = mem.alloc_f32(n, "dst");
        (mem, WarpImage::new(src, u, v, dst, w, h))
    }

    #[test]
    fn zero_flow_is_identity() {
        let (mut mem, k) = setup(32, 8);
        for i in 0..32 * 8 {
            mem.write_f32(k.src, i, i as f32);
        }
        run(&k, &mut mem);
        for i in [0u64, 100, 255] {
            assert_eq!(mem.read_f32(k.dst, i), i as f32);
        }
    }

    #[test]
    fn integer_translation_shifts_pixels() {
        let (mut mem, k) = setup(32, 8);
        for y in 0..8 {
            for x in 0..32 {
                mem.write_f32(k.src, pix(x, y, 32), x as f32);
            }
        }
        for i in 0..32 * 8 {
            mem.write_f32(k.u, i, 2.0); // sample 2 px to the right
        }
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(k.dst, pix(5, 3, 32)), 7.0);
        // Clamped at the right border.
        assert_eq!(mem.read_f32(k.dst, pix(31, 3, 32)), 31.0);
    }

    #[test]
    fn fractional_flow_interpolates() {
        let (mut mem, k) = setup(32, 8);
        for y in 0..8 {
            for x in 0..32 {
                mem.write_f32(k.src, pix(x, y, 32), x as f32);
            }
        }
        for i in 0..32 * 8 {
            mem.write_f32(k.u, i, 0.5);
        }
        run(&k, &mut mem);
        assert!((mem.read_f32(k.dst, pix(10, 2, 32)) - 10.5).abs() < 1e-6);
    }

    #[test]
    fn warp_is_not_tileable() {
        let (_, k) = setup(32, 8);
        assert!(!k.tileable());
        assert!(k.signature().is_none());
    }
}
