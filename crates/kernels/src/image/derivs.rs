//! Image-derivative computation — the `DV` node of the HSOpticalFlow DFG.

use gpu_sim::{AffineAccess, AffineSummary, AxisMap, BlockIdx, Buffer, LaunchDims};
use kgraph::{Kernel, StructuralSig};
use trace::ExecCtx;

use crate::common::{clampi, grid_for, pix, pixel_threads};

/// Computes the spatial and temporal derivatives the Horn–Schunck update
/// needs, from the first frame `i0` and the warped second frame `i1w`:
///
/// * `ix = d/dx` of the average image `(i0 + i1w) / 2` (central difference),
/// * `iy = d/dy` of the average image,
/// * `it = i1w - i0`.
///
/// One thread per pixel: 2 loads of each frame's 3-point x-stencil and
/// y-stencil (10 loads total with sharing of the center), 3 stores.
#[derive(Debug, Clone)]
pub struct Derivatives {
    /// First frame (`w * h` elements).
    pub i0: Buffer,
    /// Warped second frame (`w * h` elements).
    pub i1w: Buffer,
    /// Output d/dx (`w * h` elements).
    pub ix: Buffer,
    /// Output d/dy (`w * h` elements).
    pub iy: Buffer,
    /// Output temporal derivative (`w * h` elements).
    pub it: Buffer,
    /// Image width.
    pub w: u32,
    /// Image height.
    pub h: u32,
}

impl Derivatives {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is too small.
    pub fn new(
        i0: Buffer,
        i1w: Buffer,
        ix: Buffer,
        iy: Buffer,
        it: Buffer,
        w: u32,
        h: u32,
    ) -> Self {
        let n = w as u64 * h as u64;
        for (b, name) in [(i0, "i0"), (i1w, "i1w"), (ix, "ix"), (iy, "iy"), (it, "it")] {
            assert!(b.f32_len() >= n, "{name} buffer too small");
        }
        Derivatives { i0, i1w, ix, iy, it, w, h }
    }
}

impl Kernel for Derivatives {
    fn label(&self) -> String {
        "DV".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let xm = clampi(x as i64 - 1, self.w);
            let xp = clampi(x as i64 + 1, self.w);
            let ym = clampi(y as i64 - 1, self.h);
            let yp = clampi(y as i64 + 1, self.h);
            let i = pix(x, y, self.w);

            let a_xm = ctx.ld_f32(self.i0, pix(xm, y, self.w), tid);
            let a_xp = ctx.ld_f32(self.i0, pix(xp, y, self.w), tid);
            let a_ym = ctx.ld_f32(self.i0, pix(x, ym, self.w), tid);
            let a_yp = ctx.ld_f32(self.i0, pix(x, yp, self.w), tid);
            let a_c = ctx.ld_f32(self.i0, i, tid);
            let b_xm = ctx.ld_f32(self.i1w, pix(xm, y, self.w), tid);
            let b_xp = ctx.ld_f32(self.i1w, pix(xp, y, self.w), tid);
            let b_ym = ctx.ld_f32(self.i1w, pix(x, ym, self.w), tid);
            let b_yp = ctx.ld_f32(self.i1w, pix(x, yp, self.w), tid);
            let b_c = ctx.ld_f32(self.i1w, i, tid);

            let ix = 0.25 * ((a_xp + b_xp) - (a_xm + b_xm));
            let iy = 0.25 * ((a_yp + b_yp) - (a_ym + b_ym));
            let it = b_c - a_c;
            ctx.st_f32(self.ix, i, ix, tid);
            ctx.st_f32(self.iy, i, iy, tid);
            ctx.st_f32(self.it, i, it, tid);
            ctx.compute(tid, 10);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!(
            "DV:{}x{}:{}:{}:{}:{}:{}",
            self.w, self.h, self.i0.addr, self.i1w.addr, self.ix.addr, self.iy.addr, self.it.addr
        ))
    }

    fn structural_signature(&self) -> Option<StructuralSig> {
        Some(StructuralSig {
            class: format!("DV:{}x{}", self.w, self.h),
            roles: vec![self.i0, self.i1w, self.ix, self.iy, self.it],
        })
    }

    fn affine_summary(&self) -> Option<AffineSummary> {
        let (w, h) = (self.w, self.h);
        let x = AxisMap::identity(w);
        let y = AxisMap::identity(h);
        let frame = |b: Buffer| {
            [
                AffineAccess::load_f32(b, w, AxisMap::offset(-1, w), y),
                AffineAccess::load_f32(b, w, AxisMap::offset(1, w), y),
                AffineAccess::load_f32(b, w, x, AxisMap::offset(-1, h)),
                AffineAccess::load_f32(b, w, x, AxisMap::offset(1, h)),
                AffineAccess::load_f32(b, w, x, y),
            ]
        };
        let mut accesses = Vec::with_capacity(13);
        accesses.extend(frame(self.i0));
        accesses.extend(frame(self.i1w));
        accesses.push(AffineAccess::store_f32(self.ix, w, x, y));
        accesses.push(AffineAccess::store_f32(self.iy, w, x, y));
        accesses.push(AffineAccess::store_f32(self.it, w, x, y));
        Some(AffineSummary { domain: (w, h), accesses, compute_cycles: 10 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &Derivatives, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    fn setup(w: u32, h: u32) -> (DeviceMemory, Derivatives) {
        let mut mem = DeviceMemory::new();
        let n = w as u64 * h as u64;
        let bufs: Vec<Buffer> =
            ["i0", "i1w", "ix", "iy", "it"].iter().map(|s| mem.alloc_f32(n, s)).collect();
        let k = Derivatives::new(bufs[0], bufs[1], bufs[2], bufs[3], bufs[4], w, h);
        (mem, k)
    }

    #[test]
    fn ramp_has_unit_x_derivative() {
        let (mut mem, k) = setup(32, 8);
        for y in 0..8 {
            for x in 0..32 {
                mem.write_f32(k.i0, pix(x, y, 32), 2.0 * x as f32);
                mem.write_f32(k.i1w, pix(x, y, 32), 2.0 * x as f32);
            }
        }
        run(&k, &mut mem);
        // Interior: 0.25 * ((2(x+1)+2(x+1)) - (2(x-1)+2(x-1))) = 2.
        assert!((mem.read_f32(k.ix, pix(10, 4, 32)) - 2.0).abs() < 1e-6);
        assert_eq!(mem.read_f32(k.iy, pix(10, 4, 32)), 0.0);
        assert_eq!(mem.read_f32(k.it, pix(10, 4, 32)), 0.0);
    }

    #[test]
    fn temporal_derivative_is_frame_difference() {
        let (mut mem, k) = setup(32, 8);
        for i in 0..32 * 8 {
            mem.write_f32(k.i0, i, 1.0);
            mem.write_f32(k.i1w, i, 4.0);
        }
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(k.it, pix(16, 3, 32)), 3.0);
        assert_eq!(mem.read_f32(k.ix, pix(16, 3, 32)), 0.0);
    }

    #[test]
    fn affine_summary_reproduces_recorded_traces() {
        let (mut mem, k) = setup(50, 13);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    fn border_uses_replication() {
        let (mut mem, k) = setup(32, 8);
        for y in 0..8 {
            for x in 0..32 {
                mem.write_f32(k.i0, pix(x, y, 32), x as f32);
                mem.write_f32(k.i1w, pix(x, y, 32), x as f32);
            }
        }
        run(&k, &mut mem);
        // At x = 0 the left neighbor is clamped to x = 0:
        // ix = 0.25 * ((1+1) - (0+0)) = 0.5.
        assert!((mem.read_f32(k.ix, pix(0, 4, 32)) - 0.5).abs() < 1e-6);
    }
}
