//! Image-processing kernels: the building blocks of the HSOpticalFlow
//! application graph (Fig. 4 of the paper) plus the motivational
//! grayscale→downscale pair of Fig. 1.

mod add;
mod derivs;
mod gray;
mod jacobi;
mod scale;
mod threshold;
mod warp;

pub use add::AddField;
pub use derivs::Derivatives;
pub use gray::Grayscale;
pub use jacobi::JacobiIter;
pub use scale::{Downscale, Upscale};
pub use threshold::GradThreshold;
pub use warp::WarpImage;
