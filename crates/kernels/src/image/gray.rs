//! Grayscale conversion — kernel `A` of the paper's motivational example.

use gpu_sim::{AffineAccess, AffineSummary, AxisMap, BlockIdx, Buffer, LaunchDims};
use kgraph::{Kernel, StructuralSig};
use trace::ExecCtx;

use crate::common::{grid_for, pix, pixel_threads};

/// Converts a packed RGBA8 image to a single-channel `f32` grayscale image
/// using the Rec. 601 luma weights.
///
/// One thread per pixel; each thread performs one coalesced 4-byte load of
/// its RGBA texel and one 4-byte store of the luma value.
#[derive(Debug, Clone)]
pub struct Grayscale {
    /// Input RGBA8 buffer (`4 * w * h` bytes).
    pub rgba: Buffer,
    /// Output `f32` luma buffer (`w * h` elements).
    pub gray: Buffer,
    /// Image width in pixels.
    pub w: u32,
    /// Image height in pixels.
    pub h: u32,
}

impl Grayscale {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if either buffer is too small for the image.
    pub fn new(rgba: Buffer, gray: Buffer, w: u32, h: u32) -> Self {
        let n = w as u64 * h as u64;
        assert!(rgba.len >= 4 * n, "rgba buffer too small");
        assert!(gray.f32_len() >= n, "gray buffer too small");
        Grayscale { rgba, gray, w, h }
    }
}

impl Kernel for Grayscale {
    fn label(&self) -> String {
        "GS".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let i = pix(x, y, self.w);
            let texel = ctx.ld_u32(self.rgba, i, tid);
            let r = (texel & 0xff) as f32;
            let g = ((texel >> 8) & 0xff) as f32;
            let b = ((texel >> 16) & 0xff) as f32;
            let luma = (0.299 * r + 0.587 * g + 0.114 * b) / 255.0;
            ctx.st_f32(self.gray, i, luma, tid);
            ctx.compute(tid, 8);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("GS:{}x{}:{}:{}", self.w, self.h, self.rgba.addr, self.gray.addr))
    }

    fn structural_signature(&self) -> Option<StructuralSig> {
        Some(StructuralSig {
            class: format!("GS:{}x{}", self.w, self.h),
            roles: vec![self.rgba, self.gray],
        })
    }

    fn affine_summary(&self) -> Option<AffineSummary> {
        let x = AxisMap::identity(self.w);
        let y = AxisMap::identity(self.h);
        Some(AffineSummary {
            domain: (self.w, self.h),
            accesses: vec![
                // The RGBA texel load is 4 bytes wide, like the f32s.
                AffineAccess::load_f32(self.rgba, self.w, x, y),
                AffineAccess::store_f32(self.gray, self.w, x, y),
            ],
            compute_cycles: 8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &Grayscale, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn white_maps_to_one() {
        let mut mem = DeviceMemory::new();
        let rgba = mem.alloc_u8(4 * 64 * 16, "rgba");
        let gray = mem.alloc_f32(64 * 16, "gray");
        for i in 0..64 * 16 {
            mem.write_u32(rgba, i, 0x00ffffff);
        }
        let k = Grayscale::new(rgba, gray, 64, 16);
        run(&k, &mut mem);
        let v = mem.read_f32(gray, 100);
        assert!((v - 1.0).abs() < 1e-5, "white pixel luma = {v}");
    }

    #[test]
    fn pure_channels_use_rec601_weights() {
        let mut mem = DeviceMemory::new();
        let rgba = mem.alloc_u8(4 * 32 * 8, "rgba");
        let gray = mem.alloc_f32(32 * 8, "gray");
        mem.write_u32(rgba, 0, 0x000000ff); // pure red
        mem.write_u32(rgba, 1, 0x0000ff00); // pure green
        mem.write_u32(rgba, 2, 0x00ff0000); // pure blue
        let k = Grayscale::new(rgba, gray, 32, 8);
        run(&k, &mut mem);
        assert!((mem.read_f32(gray, 0) - 0.299).abs() < 1e-5);
        assert!((mem.read_f32(gray, 1) - 0.587).abs() < 1e-5);
        assert!((mem.read_f32(gray, 2) - 0.114).abs() < 1e-5);
    }

    #[test]
    fn affine_summary_reproduces_recorded_traces() {
        let mut mem = DeviceMemory::new();
        let rgba = mem.alloc_u8(4 * 50 * 13, "rgba");
        let gray = mem.alloc_f32(50 * 13, "gray");
        let k = Grayscale::new(rgba, gray, 50, 13);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    fn signature_distinguishes_buffers() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_u8(4 * 32 * 8, "a");
        let b = mem.alloc_f32(32 * 8, "b");
        let c = mem.alloc_f32(32 * 8, "c");
        let k1 = Grayscale::new(a, b, 32, 8);
        let k2 = Grayscale::new(a, c, 32, 8);
        assert_ne!(k1.signature(), k2.signature());
        assert!(k1.tileable());
    }
}
