//! Gradient-magnitude thresholding — the edge-mask stage of the image
//! pipeline (blur → gradient → threshold → reduce).

use gpu_sim::{AffineAccess, AffineSummary, AxisMap, BlockIdx, Buffer, LaunchDims};
use kgraph::{Kernel, StructuralSig};
use trace::ExecCtx;

use crate::common::{grid_for, pix, pixel_threads};

/// Writes `1.0` where the gradient magnitude `sqrt(ix² + iy²)` exceeds a
/// threshold and `0.0` elsewhere.
///
/// One thread per pixel: two coalesced loads (`ix`, `iy`) and one store
/// (`mask`), all at the thread's own pixel. The comparison is done on the
/// squared magnitude so the kernel stays branch-free and exact.
#[derive(Debug, Clone)]
pub struct GradThreshold {
    /// Horizontal gradient (`w * h` f32).
    pub ix: Buffer,
    /// Vertical gradient (`w * h` f32).
    pub iy: Buffer,
    /// Output mask (`w * h` f32, values 0.0 or 1.0).
    pub mask: Buffer,
    /// Image width in pixels.
    pub w: u32,
    /// Image height in pixels.
    pub h: u32,
    /// Gradient-magnitude threshold (compared squared).
    pub thresh: f32,
}

impl GradThreshold {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is too small for the image, the threshold is
    /// not finite, or the mask aliases an input (each thread would then
    /// overwrite a gradient value other threads' loads observe, making the
    /// result depend on block execution order).
    pub fn new(ix: Buffer, iy: Buffer, mask: Buffer, w: u32, h: u32, thresh: f32) -> Self {
        let n = w as u64 * h as u64;
        assert!(ix.f32_len() >= n, "ix buffer too small");
        assert!(iy.f32_len() >= n, "iy buffer too small");
        assert!(mask.f32_len() >= n, "mask buffer too small");
        assert!(thresh.is_finite(), "threshold must be finite");
        assert!(mask.id != ix.id && mask.id != iy.id, "mask must not alias an input");
        GradThreshold { ix, iy, mask, w, h, thresh }
    }
}

impl Kernel for GradThreshold {
    fn label(&self) -> String {
        "TH".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        let t2 = self.thresh * self.thresh;
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let i = pix(x, y, self.w);
            let gx = ctx.ld_f32(self.ix, i, tid);
            let gy = ctx.ld_f32(self.iy, i, tid);
            let m = if gx * gx + gy * gy > t2 { 1.0 } else { 0.0 };
            ctx.st_f32(self.mask, i, m, tid);
            ctx.compute(tid, 4);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!(
            "TH:{}x{}:{}:{}:{}:{}",
            self.w,
            self.h,
            self.thresh.to_bits(),
            self.ix.addr,
            self.iy.addr,
            self.mask.addr
        ))
    }

    fn structural_signature(&self) -> Option<StructuralSig> {
        Some(StructuralSig {
            class: format!("TH:{}x{}:{}", self.w, self.h, self.thresh.to_bits()),
            roles: vec![self.ix, self.iy, self.mask],
        })
    }

    fn affine_summary(&self) -> Option<AffineSummary> {
        let x = AxisMap::identity(self.w);
        let y = AxisMap::identity(self.h);
        Some(AffineSummary {
            domain: (self.w, self.h),
            accesses: vec![
                AffineAccess::load_f32(self.ix, self.w, x, y),
                AffineAccess::load_f32(self.iy, self.w, x, y),
                AffineAccess::store_f32(self.mask, self.w, x, y),
            ],
            compute_cycles: 4,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &GradThreshold, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn thresholds_on_magnitude() {
        let mut mem = DeviceMemory::new();
        let ix = mem.alloc_f32(32 * 8, "ix");
        let iy = mem.alloc_f32(32 * 8, "iy");
        let mask = mem.alloc_f32(32 * 8, "mask");
        mem.upload_f32(ix, &vec![0.6; 32 * 8]);
        mem.upload_f32(iy, &vec![0.8; 32 * 8]); // magnitude 1.0
        let k = GradThreshold::new(ix, iy, mask, 32, 8, 0.99);
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(mask, 0), 1.0);
        let k2 = GradThreshold::new(ix, iy, mask, 32, 8, 1.0);
        run(&k2, &mut mem);
        assert_eq!(mem.read_f32(mask, 17), 0.0, "exactly-at-threshold is below");
    }

    #[test]
    fn aliased_inputs_are_allowed_but_aliased_mask_is_not() {
        let mut mem = DeviceMemory::new();
        let g = mem.alloc_f32(32 * 8, "g");
        let mask = mem.alloc_f32(32 * 8, "mask");
        mem.upload_f32(g, &vec![1.0; 32 * 8]);
        let k = GradThreshold::new(g, g, mask, 32, 8, 1.2);
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(mask, 5), 1.0, "sqrt(2) > 1.2");
    }

    #[test]
    fn affine_summary_reproduces_recorded_traces() {
        let mut mem = DeviceMemory::new();
        let ix = mem.alloc_f32(50 * 13, "ix");
        let iy = mem.alloc_f32(50 * 13, "iy");
        let mask = mem.alloc_f32(50 * 13, "mask");
        let k = GradThreshold::new(ix, iy, mask, 50, 13, 0.5);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    fn signature_covers_threshold() {
        let mut mem = DeviceMemory::new();
        let ix = mem.alloc_f32(32 * 8, "ix");
        let iy = mem.alloc_f32(32 * 8, "iy");
        let mask = mem.alloc_f32(32 * 8, "mask");
        let k1 = GradThreshold::new(ix, iy, mask, 32, 8, 0.5);
        let k2 = GradThreshold::new(ix, iy, mask, 32, 8, 0.25);
        assert_ne!(k1.signature(), k2.signature());
        assert_ne!(
            k1.structural_signature().unwrap().class,
            k2.structural_signature().unwrap().class
        );
    }
}
