//! The Jacobi iteration — the `JI` node of the HSOpticalFlow DFG, and the
//! kernel the paper profiles throughout (Figures 2 and 3).
//!
//! One Horn–Schunck Jacobi step solves the linear system of the flow
//! increment `(du, dv)` given image derivatives `(ix, iy, it)`:
//!
//! ```text
//! du_bar = 4-neighbour average of du
//! dv_bar = 4-neighbour average of dv
//! r      = (ix*du_bar + iy*dv_bar + it) / (alpha² + ix² + iy²)
//! du'    = du_bar - ix * r
//! dv'    = dv_bar - iy * r
//! ```
//!
//! The kernel is an ideal tiling candidate (Sec. II): low per-thread data
//! locality (11 loads, each word also read by neighbours but only a few
//! times), memory-bound, and a 5-point stencil whose block dependencies are
//! fixed by geometry (input-value independent).

use gpu_sim::{AffineAccess, AffineSummary, AxisMap, BlockIdx, Buffer, LaunchDims};
use kgraph::{Kernel, StructuralSig};
use trace::ExecCtx;

use crate::common::{clampi, grid_for, pix, pixel_threads};

/// One Jacobi iteration of the Horn–Schunck solver.
///
/// Reads `du`/`dv` (ping) and the derivative images, writes `du_out`/
/// `dv_out` (pong). Successive `JI` nodes alternate ping and pong buffers.
#[derive(Debug, Clone)]
pub struct JacobiIter {
    /// Input flow-increment u component.
    pub du: Buffer,
    /// Input flow-increment v component.
    pub dv: Buffer,
    /// d/dx derivative image.
    pub ix: Buffer,
    /// d/dy derivative image.
    pub iy: Buffer,
    /// Temporal derivative image.
    pub it: Buffer,
    /// Output flow-increment u component.
    pub du_out: Buffer,
    /// Output flow-increment v component.
    pub dv_out: Buffer,
    /// Image width.
    pub w: u32,
    /// Image height.
    pub h: u32,
    /// Horn–Schunck smoothness weight squared (α²).
    pub alpha2: f32,
}

impl JacobiIter {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is too small, if `alpha2` is not positive, or if
    /// an output aliases an input (Jacobi requires ping-pong buffers).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        du: Buffer,
        dv: Buffer,
        ix: Buffer,
        iy: Buffer,
        it: Buffer,
        du_out: Buffer,
        dv_out: Buffer,
        w: u32,
        h: u32,
        alpha2: f32,
    ) -> Self {
        let n = w as u64 * h as u64;
        for (b, name) in [
            (du, "du"),
            (dv, "dv"),
            (ix, "ix"),
            (iy, "iy"),
            (it, "it"),
            (du_out, "du_out"),
            (dv_out, "dv_out"),
        ] {
            assert!(b.f32_len() >= n, "{name} buffer too small");
        }
        assert!(alpha2 > 0.0, "alpha2 must be positive");
        assert_ne!(du.id, du_out.id, "Jacobi needs distinct ping-pong buffers");
        assert_ne!(dv.id, dv_out.id, "Jacobi needs distinct ping-pong buffers");
        JacobiIter { du, dv, ix, iy, it, du_out, dv_out, w, h, alpha2 }
    }
}

impl Kernel for JacobiIter {
    fn label(&self) -> String {
        "JI".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let xm = clampi(x as i64 - 1, self.w);
            let xp = clampi(x as i64 + 1, self.w);
            let ym = clampi(y as i64 - 1, self.h);
            let yp = clampi(y as i64 + 1, self.h);
            let i = pix(x, y, self.w);

            let du_bar = 0.25
                * (ctx.ld_f32(self.du, pix(xm, y, self.w), tid)
                    + ctx.ld_f32(self.du, pix(xp, y, self.w), tid)
                    + ctx.ld_f32(self.du, pix(x, ym, self.w), tid)
                    + ctx.ld_f32(self.du, pix(x, yp, self.w), tid));
            let dv_bar = 0.25
                * (ctx.ld_f32(self.dv, pix(xm, y, self.w), tid)
                    + ctx.ld_f32(self.dv, pix(xp, y, self.w), tid)
                    + ctx.ld_f32(self.dv, pix(x, ym, self.w), tid)
                    + ctx.ld_f32(self.dv, pix(x, yp, self.w), tid));
            let ix = ctx.ld_f32(self.ix, i, tid);
            let iy = ctx.ld_f32(self.iy, i, tid);
            let it = ctx.ld_f32(self.it, i, tid);

            let r = (ix * du_bar + iy * dv_bar + it) / (self.alpha2 + ix * ix + iy * iy);
            ctx.st_f32(self.du_out, i, du_bar - ix * r, tid);
            ctx.st_f32(self.dv_out, i, dv_bar - iy * r, tid);
            ctx.compute(tid, 24);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!(
            "JI:{}x{}:{}:{}:{}:{}:{}:{}:{}",
            self.w,
            self.h,
            self.du.addr,
            self.dv.addr,
            self.ix.addr,
            self.iy.addr,
            self.it.addr,
            self.du_out.addr,
            self.dv_out.addr
        ))
    }

    fn structural_signature(&self) -> Option<StructuralSig> {
        Some(StructuralSig {
            class: format!("JI:{}x{}", self.w, self.h),
            roles: vec![self.du, self.dv, self.ix, self.iy, self.it, self.du_out, self.dv_out],
        })
    }

    fn affine_summary(&self) -> Option<AffineSummary> {
        let (w, h) = (self.w, self.h);
        let x = AxisMap::identity(w);
        let y = AxisMap::identity(h);
        let stencil = |b: Buffer| {
            [
                AffineAccess::load_f32(b, w, AxisMap::offset(-1, w), y),
                AffineAccess::load_f32(b, w, AxisMap::offset(1, w), y),
                AffineAccess::load_f32(b, w, x, AxisMap::offset(-1, h)),
                AffineAccess::load_f32(b, w, x, AxisMap::offset(1, h)),
            ]
        };
        let mut accesses = Vec::with_capacity(13);
        accesses.extend(stencil(self.du));
        accesses.extend(stencil(self.dv));
        accesses.push(AffineAccess::load_f32(self.ix, w, x, y));
        accesses.push(AffineAccess::load_f32(self.iy, w, x, y));
        accesses.push(AffineAccess::load_f32(self.it, w, x, y));
        accesses.push(AffineAccess::store_f32(self.du_out, w, x, y));
        accesses.push(AffineAccess::store_f32(self.dv_out, w, x, y));
        Some(AffineSummary { domain: (w, h), accesses, compute_cycles: 24 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &JacobiIter, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    fn setup(w: u32, h: u32) -> (DeviceMemory, JacobiIter) {
        let mut mem = DeviceMemory::new();
        let n = w as u64 * h as u64;
        let b: Vec<Buffer> = ["du", "dv", "ix", "iy", "it", "duo", "dvo"]
            .iter()
            .map(|s| mem.alloc_f32(n, s))
            .collect();
        let k = JacobiIter::new(b[0], b[1], b[2], b[3], b[4], b[5], b[6], w, h, 0.1);
        (mem, k)
    }

    #[test]
    fn zero_everything_stays_zero() {
        let (mut mem, k) = setup(32, 8);
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(k.du_out, 100), 0.0);
        assert_eq!(mem.read_f32(k.dv_out, 100), 0.0);
    }

    #[test]
    fn zero_derivatives_smooth_the_field() {
        let (mut mem, k) = setup(32, 8);
        // du has a single spike; with zero derivatives the update is pure
        // neighbour averaging.
        mem.write_f32(k.du, pix(10, 4, 32), 4.0);
        run(&k, &mut mem);
        assert_eq!(mem.read_f32(k.du_out, pix(10, 4, 32)), 0.0); // own value unused
        assert_eq!(mem.read_f32(k.du_out, pix(11, 4, 32)), 1.0); // spike/4
        assert_eq!(mem.read_f32(k.du_out, pix(10, 5, 32)), 1.0);
    }

    #[test]
    fn data_term_pulls_toward_constraint() {
        let (mut mem, k) = setup(32, 8);
        // ix = 1, it = -1 everywhere: the brightness-constancy equation
        // du*ix + it = 0 wants du = 1. With alpha2 = 0.1 and du_bar = 0:
        // r = (0 - 1)/(0.1 + 1) = -0.909..., du' = 0 - 1*r = 0.909...
        let n = 32 * 8;
        for i in 0..n {
            mem.write_f32(k.ix, i, 1.0);
            mem.write_f32(k.it, i, -1.0);
        }
        run(&k, &mut mem);
        let v = mem.read_f32(k.du_out, pix(16, 4, 32));
        assert!((v - 1.0 / 1.1).abs() < 1e-6, "v = {v}");
    }

    #[test]
    fn per_thread_access_counts() {
        let (mut mem, k) = setup(32, 8);
        let mut rec = TraceRecorder::new(128);
        rec.begin_block(k.dims().threads_per_block());
        let mut ctx = ExecCtx::new(&mut mem, &mut rec);
        k.execute_block(BlockIdx::new(0, 0, 0, k.dims().grid), &mut ctx);
        let t = rec.finish_block();
        // 8 warps; each warp's stream has 13 instructions (11 loads, 2
        // stores), each coalescing to >= 1 transaction.
        assert_eq!(t.work.warps.len(), 8);
        assert!(t.work.warps.iter().all(|w| w.txns.len() >= 13));
        assert!(t.work.warps.iter().all(|w| w.compute_cycles == 24));
    }

    #[test]
    fn affine_summary_reproduces_recorded_traces() {
        // Odd sizes exercise partial blocks and the clamped borders.
        let (mut mem, k) = setup(50, 13);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    #[should_panic(expected = "ping-pong")]
    fn in_place_jacobi_rejected() {
        let mut mem = DeviceMemory::new();
        let n = 32 * 8;
        let b: Vec<Buffer> =
            ["du", "dv", "ix", "iy", "it"].iter().map(|s| mem.alloc_f32(n, s)).collect();
        let _ = JacobiIter::new(b[0], b[1], b[2], b[3], b[4], b[0], b[1], 32, 8, 0.1);
    }
}
