//! Elementwise field addition — the `AD` node of the HSOpticalFlow DFG
//! (accumulates the solved flow increment into the running flow field).

use gpu_sim::{AffineAccess, AffineSummary, AxisMap, BlockIdx, Buffer, LaunchDims};
use kgraph::{Kernel, StructuralSig};
use trace::ExecCtx;

use crate::common::{grid_for, pix, pixel_threads};

/// In-place elementwise addition over a 2-D field: `acc += inc`.
///
/// One thread per pixel: two loads, one store.
#[derive(Debug, Clone)]
pub struct AddField {
    /// Accumulator field, updated in place (`w * h` elements).
    pub acc: Buffer,
    /// Increment field (`w * h` elements).
    pub inc: Buffer,
    /// Field width.
    pub w: u32,
    /// Field height.
    pub h: u32,
}

impl AddField {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if either buffer is too small or the two buffers alias.
    pub fn new(acc: Buffer, inc: Buffer, w: u32, h: u32) -> Self {
        let n = w as u64 * h as u64;
        assert!(acc.f32_len() >= n, "acc buffer too small");
        assert!(inc.f32_len() >= n, "inc buffer too small");
        assert_ne!(acc.id, inc.id, "acc and inc must be distinct buffers");
        AddField { acc, inc, w, h }
    }
}

impl Kernel for AddField {
    fn label(&self) -> String {
        "AD".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let i = pix(x, y, self.w);
            let a = ctx.ld_f32(self.acc, i, tid);
            let b = ctx.ld_f32(self.inc, i, tid);
            ctx.st_f32(self.acc, i, a + b, tid);
            ctx.compute(tid, 2);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("AD:{}x{}:{}:{}", self.w, self.h, self.acc.addr, self.inc.addr))
    }

    fn structural_signature(&self) -> Option<StructuralSig> {
        Some(StructuralSig {
            class: format!("AD:{}x{}", self.w, self.h),
            roles: vec![self.acc, self.inc],
        })
    }

    fn affine_summary(&self) -> Option<AffineSummary> {
        let x = AxisMap::identity(self.w);
        let y = AxisMap::identity(self.h);
        Some(AffineSummary {
            domain: (self.w, self.h),
            accesses: vec![
                AffineAccess::load_f32(self.acc, self.w, x, y),
                AffineAccess::load_f32(self.inc, self.w, x, y),
                AffineAccess::store_f32(self.acc, self.w, x, y),
            ],
            compute_cycles: 2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    #[test]
    fn accumulates_in_place() {
        let mut mem = DeviceMemory::new();
        let acc = mem.alloc_f32(32 * 8, "acc");
        let inc = mem.alloc_f32(32 * 8, "inc");
        for i in 0..32 * 8 {
            mem.write_f32(acc, i, 1.0);
            mem.write_f32(inc, i, i as f32);
        }
        let k = AddField::new(acc, inc, 32, 8);
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(&mut mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
        assert_eq!(mem.read_f32(acc, 7), 8.0);
        assert_eq!(mem.read_f32(inc, 7), 7.0, "increment must be untouched");
    }

    #[test]
    fn affine_summary_reproduces_recorded_traces() {
        let mut mem = DeviceMemory::new();
        let acc = mem.alloc_f32(50 * 13, "acc");
        let inc = mem.alloc_f32(50 * 13, "inc");
        let k = AddField::new(acc, inc, 50, 13);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    #[should_panic(expected = "distinct buffers")]
    fn aliasing_rejected() {
        let mut mem = DeviceMemory::new();
        let acc = mem.alloc_f32(32 * 8, "acc");
        let _ = AddField::new(acc, acc, 32, 8);
    }
}
