//! # kernels — the kernel zoo
//!
//! Functional, address-accurate implementations of every kernel the paper's
//! evaluation touches:
//!
//! * the image-processing kernels of the HSOpticalFlow DFG (Fig. 4):
//!   grayscale, downscale, upscale, warp, derivatives, Jacobi iteration and
//!   field addition ([`image`]);
//! * the Sec. II tiling-suitability study kernels: reduction, scan, bitonic
//!   sort, matrix multiply, transpose, Black–Scholes and the high-locality
//!   convolution counter-example ([`compute`]).
//!
//! All kernels implement [`kgraph::Kernel`]: they execute functionally
//! (tests validate their outputs against closed-form or CPU references) and
//! perform every device access through the instrumented `trace` context, so
//! the same code yields timing traces, dependency information and
//! footprints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
pub mod compute;
pub mod image;
pub mod pde;

pub use common::{clampi, grid_for, pix, pixel_threads, IMG_BLOCK};
