//! Shared helpers for kernel implementations: 2-D image launch geometry and
//! index arithmetic.

use gpu_sim::{BlockIdx, Dim3, LaunchDims};

/// The block shape used by all 2-D image kernels in this suite: 32×8
/// threads, matching the paper's motivational example (`A<<<(8×32),
/// (32×8)>>>`).
pub const IMG_BLOCK: (u32, u32) = (32, 8);

/// Launch geometry for a `w`×`h` image with the standard 32×8 block.
///
/// # Examples
///
/// ```
/// use kernels::grid_for;
/// let dims = grid_for(256, 256);
/// assert_eq!(dims.num_blocks(), 8 * 32);
/// assert_eq!(dims.threads_per_block(), 256);
/// ```
pub fn grid_for(w: u32, h: u32) -> LaunchDims {
    assert!(w > 0 && h > 0, "image must be non-empty");
    LaunchDims::new(
        Dim3::xy(w.div_ceil(IMG_BLOCK.0), h.div_ceil(IMG_BLOCK.1)),
        Dim3::xy(IMG_BLOCK.0, IMG_BLOCK.1),
    )
}

/// Iterates the threads of an image-kernel block, yielding
/// `(tid, x, y)` for the threads whose global pixel `(x, y)` lies inside the
/// `w`×`h` image (out-of-range threads exit immediately, like the guard
/// `if (x >= w || y >= h) return;` in CUDA code).
pub fn pixel_threads(block: BlockIdx, w: u32, h: u32) -> impl Iterator<Item = (u32, u32, u32)> {
    let (bw, bh) = IMG_BLOCK;
    (0..bw * bh).filter_map(move |tid| {
        let tx = tid % bw;
        let ty = tid / bw;
        let x = block.x * bw + tx;
        let y = block.y * bh + ty;
        (x < w && y < h).then_some((tid, x, y))
    })
}

/// Row-major linear index of pixel `(x, y)` in a `w`-wide image.
pub fn pix(x: u32, y: u32, w: u32) -> u64 {
    y as u64 * w as u64 + x as u64
}

/// Clamps a pixel coordinate to `[0, max - 1]` (replicate border handling).
pub fn clampi(v: i64, max: u32) -> u32 {
    v.clamp(0, max as i64 - 1) as u32
}

/// Asserts that a kernel's declared [`affine_summary`] synthesizes exactly
/// the block traces the recorder produces for a functional execution —
/// the contract the analyzer's no-execution fast path relies on.
///
/// [`affine_summary`]: kgraph::Kernel::affine_summary
#[cfg(test)]
pub(crate) fn assert_affine_summary_matches<K: kgraph::Kernel>(
    k: &K,
    mem: &mut gpu_sim::DeviceMemory,
) {
    let dims = k.dims();
    let summary = k.affine_summary().expect("kernel declares an affine summary");
    let synthesized = trace::synthesize_affine(&summary, &dims, 128).expect("2-D geometry");
    let mut rec = trace::TraceRecorder::new(128);
    let mut recorded = Vec::new();
    for block in dims.blocks().collect::<Vec<_>>() {
        rec.begin_block(dims.threads_per_block());
        let mut ctx = trace::ExecCtx::new(mem, &mut rec);
        k.execute_block(block, &mut ctx);
        recorded.push(rec.finish_block());
    }
    assert_eq!(synthesized, recorded);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_for_covers_image() {
        let d = grid_for(100, 50);
        assert_eq!(d.grid.x, 4); // ceil(100/32)
        assert_eq!(d.grid.y, 7); // ceil(50/8)
    }

    #[test]
    fn grid_for_paper_example() {
        // 256x256 image with 32x8 blocks: 8x32 grid, as in Fig. 1.
        let d = grid_for(256, 256);
        assert_eq!((d.grid.x, d.grid.y), (8, 32));
    }

    #[test]
    fn pixel_threads_guard_out_of_range() {
        let d = grid_for(33, 9); // grid 2x2, lots of guard threads
        let block = BlockIdx::new(1, 1, 0, d.grid);
        let v: Vec<_> = pixel_threads(block, 33, 9).collect();
        // Only x=32, y=8 is in range in the last block.
        assert_eq!(v, vec![(0, 32, 8)]);
    }

    #[test]
    fn pixel_threads_full_block() {
        let d = grid_for(64, 16);
        let block = BlockIdx::new(0, 0, 0, d.grid);
        assert_eq!(pixel_threads(block, 64, 16).count(), 256);
    }

    #[test]
    fn clamp_and_pix() {
        assert_eq!(clampi(-3, 10), 0);
        assert_eq!(clampi(12, 10), 9);
        assert_eq!(clampi(5, 10), 5);
        assert_eq!(pix(3, 2, 10), 23);
    }
}
