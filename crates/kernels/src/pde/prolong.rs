//! Dirichlet-consistent prolongation for multigrid.

use gpu_sim::{AffineAccess, AffineSummary, AxisMap, BlockIdx, Buffer, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use crate::common::{grid_for, pix, pixel_threads};

/// 2× bilinear prolongation with *zero extension* beyond the domain: a
/// sample position outside the coarse grid contributes zero, matching the
/// Dirichlet zero boundary of the Poisson problem. (The image-zoo
/// [`Upscale`](crate::image::Upscale) kernel replicates the border
/// instead, which is right for flow fields but makes a multigrid V-cycle
/// stall near the walls.)
#[derive(Debug, Clone)]
pub struct Prolong {
    /// Coarse field (`w * h` elements).
    pub src: Buffer,
    /// Fine field (`2w * 2h` elements).
    pub dst: Buffer,
    /// Coarse width.
    pub w: u32,
    /// Coarse height.
    pub h: u32,
}

impl Prolong {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if either buffer is too small.
    pub fn new(src: Buffer, dst: Buffer, w: u32, h: u32) -> Self {
        assert!(src.f32_len() >= w as u64 * h as u64, "src too small");
        assert!(dst.f32_len() >= 4 * w as u64 * h as u64, "dst too small");
        Prolong { src, dst, w, h }
    }
}

impl Kernel for Prolong {
    fn label(&self) -> String {
        "PR".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(2 * self.w, 2 * self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        let (ow, oh) = (2 * self.w, 2 * self.h);
        for (tid, x, y) in pixel_threads(block, ow, oh) {
            let fx = (x as f32 + 0.5) / 2.0 - 0.5;
            let fy = (y as f32 + 0.5) / 2.0 - 0.5;
            let x0 = fx.floor() as i64;
            let y0 = fy.floor() as i64;
            let ax = fx - x0 as f32;
            let ay = fy - y0 as f32;
            let sample = |ctx: &mut ExecCtx<'_>, sx: i64, sy: i64, wgt: f32| -> f32 {
                if sx < 0 || sy < 0 || sx >= self.w as i64 || sy >= self.h as i64 || wgt == 0.0 {
                    0.0
                } else {
                    wgt * ctx.ld_f32(self.src, pix(sx as u32, sy as u32, self.w), tid)
                }
            };
            let v = sample(ctx, x0, y0, (1.0 - ax) * (1.0 - ay))
                + sample(ctx, x0 + 1, y0, ax * (1.0 - ay))
                + sample(ctx, x0, y0 + 1, (1.0 - ax) * ay)
                + sample(ctx, x0 + 1, y0 + 1, ax * ay);
            ctx.st_f32(self.dst, pix(x, y, ow), v, tid);
            ctx.compute(tid, 12);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!("PR:{}x{}:{}:{}", self.w, self.h, self.src.addr, self.dst.addr))
    }

    // No structural signature: the zero-extension guard makes boundary
    // warps lane-divergent (see `PoissonSmooth`); the skipping affine
    // summary stands in. The interpolation weights are never zero (they
    // are products of 0.25 and 0.75), so the only skipped samples are the
    // out-of-domain ones the summary's `Skip` border models.

    fn affine_summary(&self) -> Option<AffineSummary> {
        let (ow, oh) = (2 * self.w, 2 * self.h);
        // floor((c + 0.5) / 2 - 0.5) = floor((c - 1) / 2) and that plus 1,
        // as in `Upscale` — but sampled with zero extension, not clamping.
        let lo = |max: u32| AxisMap { mul: 1, add: -1, div: 2, max };
        let hi = |max: u32| AxisMap { mul: 1, add: 1, div: 2, max };
        Some(AffineSummary {
            domain: (ow, oh),
            accesses: vec![
                AffineAccess::load_f32(self.src, self.w, lo(self.w), lo(self.h)).skipping(),
                AffineAccess::load_f32(self.src, self.w, hi(self.w), lo(self.h)).skipping(),
                AffineAccess::load_f32(self.src, self.w, lo(self.w), hi(self.h)).skipping(),
                AffineAccess::load_f32(self.src, self.w, hi(self.w), hi(self.h)).skipping(),
                AffineAccess::store_f32(self.dst, ow, AxisMap::identity(ow), AxisMap::identity(oh)),
            ],
            compute_cycles: 12,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &Prolong, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn interior_is_bilinear() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(4 * 4, "src");
        let dst = mem.alloc_f32(8 * 8, "dst");
        for y in 0..4 {
            for x in 0..4 {
                mem.write_f32(src, pix(x, y, 4), x as f32);
            }
        }
        let k = Prolong::new(src, dst, 4, 4);
        run(&k, &mut mem);
        // Fine x=2 -> coarse 0.75 on the x-ramp.
        let v = mem.read_f32(dst, pix(2, 4, 8));
        assert!((v - 0.75).abs() < 1e-6, "v = {v}");
    }

    #[test]
    fn affine_summary_reproduces_recorded_traces() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(25 * 7, "src");
        let dst = mem.alloc_f32(50 * 14, "dst");
        let k = Prolong::new(src, dst, 25, 7);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    fn border_decays_toward_zero() {
        let mut mem = DeviceMemory::new();
        let src = mem.alloc_f32(4 * 4, "src");
        let dst = mem.alloc_f32(8 * 8, "dst");
        for i in 0..16 {
            mem.write_f32(src, i, 1.0);
        }
        let k = Prolong::new(src, dst, 4, 4);
        run(&k, &mut mem);
        // Fine x=0 samples coarse -0.75: weight (1-0.75)=0.25 on coarse 0,
        // 0.75 on the zero wall -> 0.25... wait: fx = -0.25, x0 = -1,
        // ax = 0.75: v = 0.25*0 + 0.75*1 = 0.75 in x; same in y at border.
        let edge = mem.read_f32(dst, pix(0, 4, 8));
        assert!(edge < 1.0, "edge must feel the zero wall: {edge}");
        let corner = mem.read_f32(dst, pix(0, 0, 8));
        assert!(corner < edge, "corner decays more: {corner} vs {edge}");
        // Interior stays 1.
        assert!((mem.read_f32(dst, pix(4, 4, 8)) - 1.0).abs() < 1e-6);
    }
}
