//! PDE solver kernels: the building blocks of the multigrid Poisson
//! application (a second full KTILER workload beyond optical flow).
//!
//! The discrete Poisson equation `−∇²u = f` on a uniform grid with
//! Dirichlet zero boundaries is solved by weighted-Jacobi smoothing,
//! residual computation, and grid-transfer operators (the transfer
//! kernels are shared with the image zoo: box-filter downscale for
//! restriction, bilinear upscale for prolongation).

mod prolong;
mod residual;
mod smooth;

pub use prolong::Prolong;
pub use residual::Residual;
pub use smooth::PoissonSmooth;
