//! Residual computation for the discrete Poisson equation.

use gpu_sim::{AffineAccess, AffineSummary, AxisMap, BlockIdx, Buffer, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use crate::common::{grid_for, pix, pixel_threads};

/// Computes `r = f − A u` for the 5-point Poisson operator
/// `(A u)(x,y) = (4 u − u(x±1,y) − u(x,y±1)) / h²` with Dirichlet zero
/// boundaries.
///
/// The residual drives the coarse-grid correction of the multigrid
/// V-cycle; like the smoother it is a memory-bound 5-point stencil.
#[derive(Debug, Clone)]
pub struct Residual {
    /// Current iterate (`w * h` elements).
    pub u: Buffer,
    /// Right-hand side (`w * h` elements).
    pub f: Buffer,
    /// Output residual (`w * h` elements).
    pub r: Buffer,
    /// Grid width.
    pub w: u32,
    /// Grid height.
    pub h: u32,
    /// Squared grid spacing (h²).
    pub h2: f32,
}

impl Residual {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if a buffer is too small, `u` aliases `r`, or `h2` is not
    /// positive.
    pub fn new(u: Buffer, f: Buffer, r: Buffer, w: u32, h: u32, h2: f32) -> Self {
        let n = w as u64 * h as u64;
        for (b, name) in [(u, "u"), (f, "f"), (r, "r")] {
            assert!(b.f32_len() >= n, "{name} buffer too small");
        }
        assert_ne!(u.id, r.id, "residual must not overwrite the iterate");
        assert!(h2 > 0.0, "grid spacing must be positive");
        Residual { u, f, r, w, h, h2 }
    }
}

impl Kernel for Residual {
    fn label(&self) -> String {
        "RES".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        let inv_h2 = 1.0 / self.h2;
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let i = pix(x, y, self.w);
            let mut nb = 0.0f32;
            if x > 0 {
                nb += ctx.ld_f32(self.u, pix(x - 1, y, self.w), tid);
            }
            if x + 1 < self.w {
                nb += ctx.ld_f32(self.u, pix(x + 1, y, self.w), tid);
            }
            if y > 0 {
                nb += ctx.ld_f32(self.u, pix(x, y - 1, self.w), tid);
            }
            if y + 1 < self.h {
                nb += ctx.ld_f32(self.u, pix(x, y + 1, self.w), tid);
            }
            let uv = ctx.ld_f32(self.u, i, tid);
            let fv = ctx.ld_f32(self.f, i, tid);
            let au = (4.0 * uv - nb) * inv_h2;
            ctx.st_f32(self.r, i, fv - au, tid);
            ctx.compute(tid, 12);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!(
            "RES:{}x{}:{}:{}:{}:{}",
            self.w, self.h, self.h2, self.u.addr, self.f.addr, self.r.addr
        ))
    }

    // No structural signature: guarded boundary taps diverge within warps
    // (see `PoissonSmooth`); the skipping affine summary stands in.

    fn affine_summary(&self) -> Option<AffineSummary> {
        let (w, h) = (self.w, self.h);
        let x = AxisMap::identity(w);
        let y = AxisMap::identity(h);
        Some(AffineSummary {
            domain: (w, h),
            accesses: vec![
                AffineAccess::load_f32(self.u, w, AxisMap::offset(-1, w), y).skipping(),
                AffineAccess::load_f32(self.u, w, AxisMap::offset(1, w), y).skipping(),
                AffineAccess::load_f32(self.u, w, x, AxisMap::offset(-1, h)).skipping(),
                AffineAccess::load_f32(self.u, w, x, AxisMap::offset(1, h)).skipping(),
                AffineAccess::load_f32(self.u, w, x, y),
                AffineAccess::load_f32(self.f, w, x, y),
                AffineAccess::store_f32(self.r, w, x, y),
            ],
            compute_cycles: 12,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &Residual, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn zero_iterate_residual_equals_rhs() {
        let mut mem = DeviceMemory::new();
        let n = 32 * 8;
        let u = mem.alloc_f32(n, "u");
        let f = mem.alloc_f32(n, "f");
        let r = mem.alloc_f32(n, "r");
        for i in 0..n {
            mem.write_f32(f, i, i as f32 * 0.1);
        }
        let k = Residual::new(u, f, r, 32, 8, 1.0);
        run(&k, &mut mem);
        for i in [0u64, 100, 255] {
            assert_eq!(mem.read_f32(r, i), i as f32 * 0.1);
        }
    }

    #[test]
    fn exact_solution_has_zero_residual() {
        // u(x,y) = x (linear): A u = 0 in the interior; choose f = 0 so the
        // interior residual is zero (boundary rows see the Dirichlet wall).
        let mut mem = DeviceMemory::new();
        let (w, h) = (32u32, 8u32);
        let n = (w * h) as u64;
        let u = mem.alloc_f32(n, "u");
        let f = mem.alloc_f32(n, "f");
        let r = mem.alloc_f32(n, "r");
        for y in 0..h {
            for x in 0..w {
                mem.write_f32(u, pix(x, y, w), x as f32);
            }
        }
        let k = Residual::new(u, f, r, w, h, 1.0);
        run(&k, &mut mem);
        // Interior (away from all four walls): residual 0.
        assert_eq!(mem.read_f32(r, pix(10, 4, w)), 0.0);
        // At the left wall the missing neighbour biases the operator.
        assert_ne!(mem.read_f32(r, pix(0, 4, w)), 0.0);
    }

    #[test]
    fn affine_summary_reproduces_recorded_traces() {
        let mut mem = DeviceMemory::new();
        let n = 50 * 13;
        let u = mem.alloc_f32(n, "u");
        let f = mem.alloc_f32(n, "f");
        let r = mem.alloc_f32(n, "r");
        let k = Residual::new(u, f, r, 50, 13, 1.0);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    fn spacing_scales_operator() {
        let mut mem = DeviceMemory::new();
        let n = 32 * 8;
        let u = mem.alloc_f32(n, "u");
        let f = mem.alloc_f32(n, "f");
        let r1 = mem.alloc_f32(n, "r1");
        let r4 = mem.alloc_f32(n, "r4");
        mem.write_f32(u, pix(10, 4, 32), 1.0);
        run(&Residual::new(u, f, r1, 32, 8, 1.0), &mut mem);
        run(&Residual::new(u, f, r4, 32, 8, 4.0), &mut mem);
        let a1 = mem.read_f32(r1, pix(10, 4, 32));
        let a4 = mem.read_f32(r4, pix(10, 4, 32));
        assert!((a1 - 4.0 * a4).abs() < 1e-6, "{a1} vs {a4}");
    }
}
