//! Weighted-Jacobi smoothing for the discrete Poisson equation.

use gpu_sim::{AffineAccess, AffineSummary, AxisMap, BlockIdx, Buffer, LaunchDims};
use kgraph::Kernel;
use trace::ExecCtx;

use crate::common::{grid_for, pix, pixel_threads};

/// One weighted-Jacobi sweep for `−∇²u = f` with Dirichlet zero
/// boundaries on a `w`×`h` grid of spacing `h`:
///
/// ```text
/// u*(x,y) = (u(x±1,y) + u(x,y±1) + h² f(x,y)) / 4
/// u'      = (1−ω) u + ω u*
/// ```
///
/// Out-of-domain neighbours contribute zero (the boundary condition).
/// Like the optical-flow Jacobi, this is a memory-bound 5-point stencil
/// with input-independent block dependencies — an ideal tiling candidate.
#[derive(Debug, Clone)]
pub struct PoissonSmooth {
    /// Current iterate (`w * h` elements).
    pub u_in: Buffer,
    /// Right-hand side (`w * h` elements).
    pub f: Buffer,
    /// Next iterate (`w * h` elements).
    pub u_out: Buffer,
    /// Grid width.
    pub w: u32,
    /// Grid height.
    pub h: u32,
    /// Squared grid spacing (h²).
    pub h2: f32,
    /// Damping factor ω (2/3 to 0.9 for multigrid smoothing).
    pub omega: f32,
}

impl PoissonSmooth {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if buffers are too small, `u_in` aliases `u_out`, or the
    /// parameters are outside their valid ranges.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        u_in: Buffer,
        f: Buffer,
        u_out: Buffer,
        w: u32,
        h: u32,
        h2: f32,
        omega: f32,
    ) -> Self {
        let n = w as u64 * h as u64;
        for (b, name) in [(u_in, "u_in"), (f, "f"), (u_out, "u_out")] {
            assert!(b.f32_len() >= n, "{name} buffer too small");
        }
        assert_ne!(u_in.id, u_out.id, "Jacobi smoothing needs ping-pong buffers");
        assert!(h2 > 0.0, "grid spacing must be positive");
        assert!(omega > 0.0 && omega <= 1.0, "omega must be in (0, 1]");
        PoissonSmooth { u_in, f, u_out, w, h, h2, omega }
    }
}

impl Kernel for PoissonSmooth {
    fn label(&self) -> String {
        "SM".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let i = pix(x, y, self.w);
            // Dirichlet zero boundary: out-of-domain neighbours read as 0
            // (and issue no memory access, as real code would guard them).
            let mut nb = 0.0f32;
            if x > 0 {
                nb += ctx.ld_f32(self.u_in, pix(x - 1, y, self.w), tid);
            }
            if x + 1 < self.w {
                nb += ctx.ld_f32(self.u_in, pix(x + 1, y, self.w), tid);
            }
            if y > 0 {
                nb += ctx.ld_f32(self.u_in, pix(x, y - 1, self.w), tid);
            }
            if y + 1 < self.h {
                nb += ctx.ld_f32(self.u_in, pix(x, y + 1, self.w), tid);
            }
            let fv = ctx.ld_f32(self.f, i, tid);
            let uv = ctx.ld_f32(self.u_in, i, tid);
            let star = (nb + self.h2 * fv) * 0.25;
            ctx.st_f32(self.u_out, i, (1.0 - self.omega) * uv + self.omega * star, tid);
            ctx.compute(tid, 14);
        }
    }

    fn signature(&self) -> Option<String> {
        Some(format!(
            "SM:{}x{}:{}:{}:{}:{}:{}",
            self.w, self.h, self.h2, self.omega, self.u_in.addr, self.f.addr, self.u_out.addr
        ))
    }

    // No structural signature: the guarded boundary taps make warp
    // instruction streams lane-divergent, so a single warp instruction can
    // mix buffers — the trace-rebase contract does not hold. The affine
    // summary below (with skipping taps) covers trace derivation instead.

    fn affine_summary(&self) -> Option<AffineSummary> {
        let (w, h) = (self.w, self.h);
        let x = AxisMap::identity(w);
        let y = AxisMap::identity(h);
        Some(AffineSummary {
            domain: (w, h),
            accesses: vec![
                AffineAccess::load_f32(self.u_in, w, AxisMap::offset(-1, w), y).skipping(),
                AffineAccess::load_f32(self.u_in, w, AxisMap::offset(1, w), y).skipping(),
                AffineAccess::load_f32(self.u_in, w, x, AxisMap::offset(-1, h)).skipping(),
                AffineAccess::load_f32(self.u_in, w, x, AxisMap::offset(1, h)).skipping(),
                AffineAccess::load_f32(self.f, w, x, y),
                AffineAccess::load_f32(self.u_in, w, x, y),
                AffineAccess::store_f32(self.u_out, w, x, y),
            ],
            compute_cycles: 14,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;
    use trace::TraceRecorder;

    fn run(k: &PoissonSmooth, mem: &mut DeviceMemory) {
        let mut rec = TraceRecorder::new(128);
        for block in k.dims().blocks().collect::<Vec<_>>() {
            rec.begin_block(k.dims().threads_per_block());
            let mut ctx = ExecCtx::new(mem, &mut rec);
            k.execute_block(block, &mut ctx);
            let _ = rec.finish_block();
        }
    }

    #[test]
    fn zero_rhs_decays_solution() {
        let mut mem = DeviceMemory::new();
        let (w, h) = (32u32, 8u32);
        let n = (w * h) as u64;
        let u0 = mem.alloc_f32(n, "u0");
        let f = mem.alloc_f32(n, "f");
        let u1 = mem.alloc_f32(n, "u1");
        for i in 0..n {
            mem.write_f32(u0, i, 1.0);
        }
        let k = PoissonSmooth::new(u0, f, u1, w, h, 1.0, 0.8);
        run(&k, &mut mem);
        // Interior point: star = 4/4 = 1, u' = 1 — unchanged.
        assert!((mem.read_f32(u1, pix(16, 4, w)) - 1.0).abs() < 1e-6);
        // Corner: only 2 neighbours, star = 0.5 -> u' = 0.2 + 0.4 = 0.6.
        assert!((mem.read_f32(u1, pix(0, 0, w)) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn constant_rhs_pushes_solution_up() {
        let mut mem = DeviceMemory::new();
        let (w, h) = (32u32, 8u32);
        let n = (w * h) as u64;
        let u0 = mem.alloc_f32(n, "u0");
        let f = mem.alloc_f32(n, "f");
        let u1 = mem.alloc_f32(n, "u1");
        for i in 0..n {
            mem.write_f32(f, i, 4.0);
        }
        let k = PoissonSmooth::new(u0, f, u1, w, h, 1.0, 1.0);
        run(&k, &mut mem);
        // From u=0: u' = omega * (0 + h2*f)/4 = 1 everywhere.
        assert_eq!(mem.read_f32(u1, pix(10, 3, w)), 1.0);
    }

    #[test]
    fn affine_summary_reproduces_recorded_traces() {
        let mut mem = DeviceMemory::new();
        let n = 50 * 13;
        let u0 = mem.alloc_f32(n, "u0");
        let f = mem.alloc_f32(n, "f");
        let u1 = mem.alloc_f32(n, "u1");
        let k = PoissonSmooth::new(u0, f, u1, 50, 13, 1.0, 0.8);
        crate::common::assert_affine_summary_matches(&k, &mut mem);
    }

    #[test]
    #[should_panic(expected = "ping-pong")]
    fn in_place_rejected() {
        let mut mem = DeviceMemory::new();
        let u = mem.alloc_f32(64, "u");
        let f = mem.alloc_f32(64, "f");
        let _ = PoissonSmooth::new(u, f, u, 8, 8, 1.0, 0.8);
    }
}
