//! End-to-end tests of the scheduling service: cache miss/hit identity,
//! verify-on-load recovery, single-flight deduplication, shedding,
//! deadlines and the TCP front-end.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ktiler_svc::metrics::Metrics;
use ktiler_svc::proto::{write_frame, Request, Response};
use ktiler_svc::{
    serve, NetClient, Outcome, ScheduleRequest, Service, ServiceConfig, SvcError, WorkloadSpec,
};

/// A fresh scratch directory unique to this test invocation; callers clean
/// it up with [`cleanup`] on success (left behind on failure for
/// inspection).
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("ktiler-svc-test-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

fn small_request() -> ScheduleRequest {
    ScheduleRequest::new(WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 2 })
}

#[test]
fn miss_then_hit_is_byte_identical_64px() {
    let dir = temp_dir("hit64");
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let client = svc.client();

    let first = client.schedule(small_request()).unwrap();
    assert_eq!(first.outcome, Outcome::Miss);
    assert!(first.launches > 0);
    assert!(!first.text.is_empty());

    let second = client.schedule(small_request()).unwrap();
    assert_eq!(second.outcome, Outcome::Hit);
    assert_eq!(second.key, first.key);
    assert_eq!(second.launches, first.launches);
    assert_eq!(second.text, first.text, "hit must be byte-identical to the miss");

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.cache_misses), 1);
    assert_eq!(Metrics::get(&m.cache_hits), 1);
    assert_eq!(Metrics::get(&m.pipeline_runs), 1);
    assert_eq!(Metrics::get(&m.verify_failures), 0);

    // The artifact on disk is exactly the served text.
    let artifact = dir.join(format!("{}.sched", first.key));
    assert_eq!(std::fs::read_to_string(&artifact).unwrap(), first.text);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn miss_then_hit_is_byte_identical_512px() {
    let dir = temp_dir("hit512");
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let client = svc.client();
    // Full frame size, reduced solver work to keep the test quick.
    let req = ScheduleRequest::new(WorkloadSpec::OptFlow { size: 512, iters: 3, levels: 2 });

    let first = client.schedule(req.clone()).unwrap();
    assert_eq!(first.outcome, Outcome::Miss);
    let second = client.schedule(req).unwrap();
    assert_eq!(second.outcome, Outcome::Hit);
    assert_eq!(second.text, first.text, "hit must be byte-identical to the miss");

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn corrupted_artifact_is_detected_and_recomputed() {
    let dir = temp_dir("corrupt");
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let client = svc.client();

    let first = client.schedule(small_request()).unwrap();
    let artifact = dir.join(format!("{}.sched", first.key));

    // Outright garbage: fails parsing.
    std::fs::write(&artifact, "not a schedule at all\n\x01\x02").unwrap();
    let second = client.schedule(small_request()).unwrap();
    assert_eq!(second.outcome, Outcome::Recompute);
    assert_eq!(second.text, first.text, "recompute must reproduce the original schedule");
    assert_eq!(
        std::fs::read_to_string(&artifact).unwrap(),
        first.text,
        "recompute must restore the on-disk artifact"
    );

    // The garbage was quarantined, not destroyed: it sits at
    // `<key>.sched.bad` for inspection.
    let quarantined = dir.join(format!("{}.sched.bad", first.key));
    assert_eq!(
        std::fs::read_to_string(&quarantined).unwrap(),
        "not a schedule at all\n\x01\x02",
        "quarantine must preserve the corrupt bytes"
    );

    // Parseable but semantically wrong: drop the final launch so blocks go
    // missing. Parsing succeeds; only verify-on-load can catch this.
    let truncated: String = {
        let lines: Vec<&str> = first.text.lines().collect();
        lines[..lines.len() - 1].join("\n") + "\n"
    };
    std::fs::write(&artifact, truncated.clone()).unwrap();
    let third = client.schedule(small_request()).unwrap();
    assert_eq!(third.outcome, Outcome::Recompute);
    assert_eq!(third.text, first.text);

    // A second corruption of the same key replaces the first quarantined
    // file — the cap is one `.bad` per key, so a flapping artifact cannot
    // fill the disk.
    assert_eq!(
        std::fs::read_to_string(&quarantined).unwrap(),
        truncated,
        "the newer corruption replaces the older quarantined file"
    );
    let bad_files = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().path().to_string_lossy().ends_with(".sched.bad"))
        .count();
    assert_eq!(bad_files, 1, "at most one quarantined file per key");

    // And the cache is healthy again.
    let fourth = client.schedule(small_request()).unwrap();
    assert_eq!(fourth.outcome, Outcome::Hit);

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.verify_failures), 2);
    assert_eq!(Metrics::get(&m.cache_hits), 1);
    assert_eq!(Metrics::get(&m.cache_misses), 1);
    assert_eq!(Metrics::get(&m.pipeline_runs), 3);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn eight_concurrent_identical_requests_run_the_pipeline_once() {
    let dir = temp_dir("singleflight");
    let mut cfg = ServiceConfig::new(&dir);
    cfg.workers = 4; // real worker concurrency, so coalescing is exercised
    let svc = Arc::new(Service::start(cfg).unwrap());

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let client = svc.client();
            std::thread::spawn(move || client.schedule(small_request()))
        })
        .collect();
    let mut texts = Vec::new();
    for t in threads {
        let resp = t.join().unwrap().expect("request should succeed");
        texts.push(resp.text);
    }
    assert!(texts.windows(2).all(|w| w[0] == w[1]), "all responses identical");

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.pipeline_runs), 1, "single-flight must dedup to one run");
    assert_eq!(Metrics::get(&m.cache_misses), 1);
    assert_eq!(
        Metrics::get(&m.cache_hits) + Metrics::get(&m.coalesced),
        7,
        "the other 7 must be coalesced onto the leader or served from cache"
    );
    assert_eq!(Metrics::get(&m.requests), 8);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn full_queue_sheds_instead_of_blocking() {
    let dir = temp_dir("shed");
    let mut cfg = ServiceConfig::new(&dir);
    cfg.queue_capacity = 0; // every submit finds the queue "full"
    let svc = Service::start(cfg).unwrap();
    let client = svc.client();

    let t0 = Instant::now();
    let err = client.schedule(small_request()).unwrap_err();
    assert_eq!(err, SvcError::Shed);
    assert!(t0.elapsed() < Duration::from_secs(1), "shedding must not block");

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.sheds), 1);
    assert_eq!(Metrics::get(&m.requests), 0, "shed requests are never admitted");

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn expired_deadline_is_reported() {
    let dir = temp_dir("deadline");
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let client = svc.client();

    let req = ScheduleRequest { deadline_ms: Some(0), ..small_request() };
    let err = client.schedule(req).unwrap_err();
    assert_eq!(err, SvcError::DeadlineExceeded);

    // The worker that dequeued it records the expiry (poll briefly: the
    // client may observe its own deadline before the worker pops the job).
    let m = svc.metrics();
    let deadline = Instant::now() + Duration::from_secs(5);
    while Metrics::get(&m.deadline_expired) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(Metrics::get(&m.deadline_expired), 1);
    assert_eq!(Metrics::get(&m.pipeline_runs), 0, "expired work must not run");

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn bad_requests_are_rejected_before_queueing() {
    let dir = temp_dir("badreq");
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let client = svc.client();

    let req = ScheduleRequest::new(WorkloadSpec::OptFlow { size: 7, iters: 3, levels: 2 });
    assert!(matches!(client.schedule(req), Err(SvcError::BadRequest(_))));

    let mut req = small_request();
    req.gpu_mhz = -5.0;
    assert!(matches!(client.schedule(req), Err(SvcError::BadRequest(_))));

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.requests), 0);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn shutdown_rejects_new_requests_and_joins() {
    let dir = temp_dir("shutdown");
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let client = svc.client();
    svc.shutdown();
    assert_eq!(client.schedule(small_request()).unwrap_err(), SvcError::ShuttingDown);
    svc.shutdown(); // idempotent
    cleanup(&dir);
}

#[test]
fn tcp_end_to_end() {
    let dir = temp_dir("tcp");
    let svc = Arc::new(Service::start(ServiceConfig::new(&dir)).unwrap());
    let server = serve("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr).unwrap();
    assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);

    // Miss, then hit, over the wire.
    let req = Request::Schedule(small_request());
    let Response::Schedule(first) = client.request(&req).unwrap() else {
        panic!("expected a schedule response");
    };
    assert_eq!(first.outcome, Outcome::Miss);
    let Response::Schedule(second) = client.request(&req).unwrap() else {
        panic!("expected a schedule response");
    };
    assert_eq!(second.outcome, Outcome::Hit);
    assert_eq!(second.text, first.text);

    // An invalid request gets a typed error, not a dropped connection.
    let Response::Err(e) = client
        .request(&Request::Schedule(ScheduleRequest::new(WorkloadSpec::OptFlow {
            size: 16,
            iters: 1,
            levels: 6,
        })))
        .unwrap()
    else {
        panic!("expected an error response");
    };
    assert!(matches!(e, SvcError::BadRequest(_)));

    // A malformed line gets a BAD_REQUEST too — a second connection, so
    // this test also covers concurrent connections.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    write_frame(&mut raw, b"FROBNICATE now").unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let payload = ktiler_svc::proto::read_frame(&mut reader).unwrap().unwrap();
    assert!(matches!(Response::decode(&payload), Ok(Response::Err(SvcError::BadRequest(_)))));

    let Response::Stats(json) = client.request(&Request::Stats).unwrap() else {
        panic!("expected a stats response");
    };
    assert!(json.contains("\"cache_hits\": 1"), "{json}");
    assert!(json.contains("\"cache_misses\": 1"), "{json}");

    assert_eq!(client.request(&Request::Shutdown).unwrap(), Response::Bye);
    let svc = server.join(); // returns once the front-end wound down
    assert_eq!(Metrics::get(&svc.metrics().requests), 2);
    cleanup(&dir);
}

#[test]
fn finished_connection_handlers_are_reaped_not_accumulated() {
    let dir = temp_dir("reap");
    let svc = Arc::new(Service::start(ServiceConfig::new(&dir)).unwrap());
    let server = serve("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let addr = server.local_addr();

    // 100 sequential short-lived connections. Before handler reaping the
    // accept loop kept every JoinHandle it ever spawned; now the list must
    // stay proportional to *live* connections.
    for _ in 0..100 {
        let mut client = NetClient::connect(addr).unwrap();
        assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);
    }
    // Handlers notice the hangup within their read poll; give them that
    // plus scheduling slack.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.live_connections() > 4 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let live = server.live_connections();
    assert!(live <= 4, "100 closed connections left {live} live handler threads");

    server.request_stop();
    server.join();
    cleanup(&dir);
}
