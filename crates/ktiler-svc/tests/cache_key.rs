//! Stability tests of the content-addressed schedule cache key: identical
//! inputs built from scratch twice must produce the identical key, and
//! perturbing any key ingredient — L2 geometry, launch grid, or the
//! calibrated performance tables — must change it.

use gpu_sim::{FreqConfig, GpuConfig};
use hsoptflow::{build_app, synthetic_pair, HsParams};
use kgraph::GraphTrace;
use ktiler::{calibrate, Calibration, CalibrationConfig, KtilerConfig, TileParams};
use ktiler_svc::{schedule_cache_key, CacheKey};

struct Built {
    graph: kgraph::AppGraph,
    gt: GraphTrace,
    gpu: GpuConfig,
    cal: Calibration,
    kcfg: KtilerConfig,
}

/// Builds the full pipeline state for a workload from scratch — each call
/// is an independent "fresh build" of every key ingredient.
fn build(size: u32) -> Built {
    let gpu = GpuConfig::gtx960m();
    let p = HsParams { levels: 2, jacobi_iters: 3, warp_iters: 1, alpha2: 0.1 };
    let (f0, f1) = synthetic_pair(size, size, 1.0, 0.5, 7);
    let mut app = build_app(&f0, &f1, &p);
    let gt = kgraph::analyze(&app.graph, &mut app.mem, gpu.cache.line_bytes).unwrap();
    let cal =
        calibrate(&app.graph, &gt, &gpu, FreqConfig::default(), &CalibrationConfig::default());
    let kcfg = KtilerConfig {
        weight_threshold_ns: 1_000.0,
        tile: TileParams::paper(gpu.cache.capacity_bytes, gpu.cache.line_bytes, 0.0),
    };
    Built { graph: app.graph, gt, gpu, cal, kcfg }
}

fn key_of(b: &Built) -> CacheKey {
    schedule_cache_key(&b.graph, &b.gt, &b.gpu.cache, &b.cal, &b.kcfg)
}

#[test]
fn same_inputs_from_fresh_builds_share_one_key() {
    let a = build(64);
    let b = build(64);
    assert_eq!(key_of(&a), key_of(&b), "key must be stable across fresh builds");
}

#[test]
fn changing_the_l2_configuration_changes_the_key() {
    let a = build(64);
    let base = key_of(&a);

    // Halve the modelled L2 capacity (and the derived tile budget with it).
    let mut b = build(64);
    b.gpu.cache.capacity_bytes /= 2;
    b.kcfg.tile.cache_bytes /= 2;
    assert_ne!(key_of(&b), base, "L2 capacity must be part of the key");

    // Associativity alone (tile params untouched).
    let mut c = build(64);
    c.gpu.cache.ways *= 2;
    assert_ne!(key_of(&c), base, "associativity must be part of the key");
}

#[test]
fn changing_the_grid_changes_the_key() {
    // A different frame size changes every kernel's launch grid.
    assert_ne!(key_of(&build(64)), key_of(&build(128)));
}

#[test]
fn changing_the_perf_table_changes_the_key() {
    let a = build(64);
    let base = key_of(&a);

    let mut b = build(64);
    let table = b
        .cal
        .tables
        .iter_mut()
        .find(|t| !t.masks().is_empty())
        .expect("at least one calibrated kernel");
    // One extra sampled point on one kernel's cold curve.
    table.insert(0, 123_457, 9_876.5);
    assert_ne!(key_of(&b), base, "perf-table samples must be part of the key");
}

#[test]
fn changing_the_tiling_policy_changes_the_key() {
    let a = build(64);
    let base = key_of(&a);

    let mut b = build(64);
    b.kcfg.weight_threshold_ns += 1.0;
    assert_ne!(key_of(&b), base, "merge threshold must be part of the key");

    let mut c = build(64);
    c.kcfg.tile.constraint =
        ktiler::CacheConstraint::SimulatedHitRate { min_reuse_hit: 0.9, ways: c.gpu.cache.ways };
    assert_ne!(key_of(&c), base, "constraint policy must be part of the key");
}
