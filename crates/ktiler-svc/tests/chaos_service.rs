//! Chaos suite: seeded fault plans against the live service.
//!
//! Every test arms a deterministic [`FaultPlan`] (seed from
//! `KTILER_CHAOS_SEED`, fixed default) and asserts the containment
//! contract: the service stays live, every non-faulted request is
//! answered, responses are byte-identical to no-fault runs once the
//! faults clear, no client waits past its deadline plus the backoff
//! budget, and the metrics account for every failure.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ktiler_svc::fault::{points, FaultPlan, FaultSpec};
use ktiler_svc::metrics::Metrics;
use ktiler_svc::proto::{read_frame, write_frame, Request, Response};
use ktiler_svc::{
    serve_with, NetClient, Outcome, RetryPolicy, ScheduleRequest, ServerTuning, Service,
    ServiceConfig, SvcError, WorkloadSpec,
};

/// The seed every plan in this suite derives from; override with
/// `KTILER_CHAOS_SEED=<n>` to explore other jitter streams (the
/// assertions hold for any seed — determinism is per-seed).
fn chaos_seed() -> u64 {
    std::env::var("KTILER_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE)
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ktiler-chaos-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

fn small_request() -> ScheduleRequest {
    ScheduleRequest::new(WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 2 })
}

/// The schedule text a pristine, fault-free service computes for
/// [`small_request`]; the determinism baseline the chaos runs are
/// compared against byte for byte.
fn baseline_text(tag: &str) -> String {
    let dir = temp_dir(tag);
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let resp = svc.client().schedule(small_request()).unwrap();
    assert_eq!(resp.outcome, Outcome::Miss);
    svc.shutdown();
    cleanup(&dir);
    resp.text
}

/// Polls `cond` until it holds or `within` elapses.
fn eventually(within: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + within;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn pipeline_panic_degrades_to_verified_untiled_then_recovers_byte_identical() {
    let expected = baseline_text("panic-base");
    let dir = temp_dir("panic");
    let mut cfg = ServiceConfig::new(&dir);
    cfg.workers = 2;
    let svc = Service::start(cfg).unwrap();
    let client = svc.client();

    svc.faults().load_plan(
        &FaultPlan::new(chaos_seed()).arm(points::PIPELINE_SCHEDULE, FaultSpec::panic()),
    );

    // The tiler panics mid-pipeline; the worker catches it and serves the
    // verified untiled fallback instead of hanging or erroring.
    let degraded = client.schedule(small_request()).expect("degraded, not failed");
    assert_eq!(degraded.outcome, Outcome::DegradedUntiled);
    assert!(degraded.launches > 0);
    assert!(!degraded.text.is_empty());

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.worker_panics), 1);
    assert_eq!(Metrics::get(&m.degraded_total), 1);
    assert_eq!(Metrics::get(&m.errors), 0, "a degraded answer is not an error");
    assert_eq!(svc.live_workers(), 2, "a caught panic must not kill the worker");

    // Fault cleared: the same request computes the exact no-fault bytes,
    // and nothing bogus was cached meanwhile.
    svc.faults().clear();
    let miss = client.schedule(small_request()).unwrap();
    assert_eq!(miss.outcome, Outcome::Miss, "degraded responses are never cached");
    assert_eq!(miss.text, expected, "recovery must be byte-identical to a no-fault run");
    let hit = client.schedule(small_request()).unwrap();
    assert_eq!(hit.outcome, Outcome::Hit);
    assert_eq!(hit.text, expected);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn pipeline_io_failure_degrades_without_a_panic() {
    let expected = baseline_text("io-base");
    let dir = temp_dir("io");
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let client = svc.client();

    svc.faults().load_plan(
        &FaultPlan::new(chaos_seed()).arm(points::FRAME_IO, FaultSpec::io("frame source gone")),
    );
    let degraded = client.schedule(small_request()).expect("degraded, not failed");
    assert_eq!(degraded.outcome, Outcome::DegradedUntiled);

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.worker_panics), 0, "an io fault is an error path, not a panic");
    assert_eq!(Metrics::get(&m.degraded_total), 1);
    assert_eq!(Metrics::get(&m.errors), 0);

    svc.faults().clear();
    assert_eq!(client.schedule(small_request()).unwrap().text, expected);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn queue_dequeue_panic_kills_the_worker_and_the_supervisor_respawns_it() {
    let dir = temp_dir("respawn");
    let mut cfg = ServiceConfig::new(&dir);
    cfg.workers = 1; // the panic takes out the whole pool
    let svc = Service::start(cfg).unwrap();
    let client = svc.client();

    // The panic fires after the worker wakes but before it pops the job:
    // the worker thread dies uncaught, the job stays queued, and only the
    // supervisor's respawn can ever serve it.
    svc.faults()
        .load_plan(&FaultPlan::new(chaos_seed()).arm(points::QUEUE_DEQUEUE, FaultSpec::panic()));
    let resp = client.schedule(small_request()).expect("respawned worker must serve the job");
    assert_eq!(resp.outcome, Outcome::Miss);

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.workers_respawned), 1, "the supervisor replaced the dead worker");
    assert_eq!(Metrics::get(&m.worker_panics), 0, "nothing was mid-request, so nothing caught");
    assert!(
        eventually(Duration::from_secs(5), || svc.live_workers() == 1),
        "pool must return to full strength, live = {}",
        svc.live_workers()
    );

    // The respawned worker is a full citizen: later requests hit the cache.
    assert_eq!(client.schedule(small_request()).unwrap().outcome, Outcome::Hit);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn cache_store_failure_still_serves_and_the_cache_heals() {
    let dir = temp_dir("store");
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let client = svc.client();

    svc.faults().load_plan(
        &FaultPlan::new(chaos_seed()).arm(points::CACHE_STORE, FaultSpec::io("disk full")),
    );
    let first = client.schedule(small_request()).expect("a lost store must not fail the request");
    assert_eq!(first.outcome, Outcome::Miss);

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.store_failures), 1);
    assert!(
        !dir.join(format!("{}.sched", first.key)).exists(),
        "the injected failure must have prevented the store"
    );

    // Fault cleared: the next request recomputes (nothing on disk),
    // persists, and the one after is a byte-identical hit.
    svc.faults().clear();
    let second = client.schedule(small_request()).unwrap();
    assert_eq!(second.outcome, Outcome::Miss);
    assert_eq!(second.text, first.text);
    let third = client.schedule(small_request()).unwrap();
    assert_eq!(third.outcome, Outcome::Hit);
    assert_eq!(third.text, first.text);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn corrupt_artifact_then_crash_quarantines_degrades_and_recovers() {
    let dir = temp_dir("corrupt-crash");
    let svc = Service::start(ServiceConfig::new(&dir)).unwrap();
    let client = svc.client();

    let first = client.schedule(small_request()).unwrap();
    let artifact = dir.join(format!("{}.sched", first.key));
    let quarantined = dir.join(format!("{}.sched.bad", first.key));

    // Corrupt the artifact on disk AND arm a panic in the recompute: the
    // probe quarantines the corruption, the recompute crashes, and the
    // request still gets a verified (untiled) answer.
    std::fs::write(&artifact, "garbage\x01").unwrap();
    svc.faults().load_plan(
        &FaultPlan::new(chaos_seed()).arm(points::PIPELINE_SCHEDULE, FaultSpec::panic()),
    );
    let degraded = client.schedule(small_request()).expect("degraded, not failed");
    assert_eq!(degraded.outcome, Outcome::DegradedUntiled);
    assert!(!artifact.exists(), "the corrupt artifact was moved aside");
    assert_eq!(
        std::fs::read_to_string(&quarantined).unwrap(),
        "garbage\x01",
        "the quarantined file preserves the evidence"
    );

    let m = svc.metrics();
    assert_eq!(Metrics::get(&m.verify_failures), 1);
    assert_eq!(Metrics::get(&m.worker_panics), 1);
    assert_eq!(Metrics::get(&m.degraded_total), 1);

    // Fault cleared: recompute restores the byte-identical artifact.
    svc.faults().clear();
    let recovered = client.schedule(small_request()).unwrap();
    assert_eq!(recovered.outcome, Outcome::Miss, "quarantine leaves no artifact behind");
    assert_eq!(recovered.text, first.text);
    assert_eq!(std::fs::read_to_string(&artifact).unwrap(), first.text);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn slow_dequeue_past_the_deadline_fails_fast_and_never_runs_the_pipeline() {
    let dir = temp_dir("slow");
    let mut cfg = ServiceConfig::new(&dir);
    cfg.workers = 1;
    let svc = Service::start(cfg).unwrap();
    let client = svc.client();

    // The only worker stalls for ~300 ms on its way to the queue; the
    // request's 100 ms deadline expires while it is still queued.
    svc.faults().load_plan(
        &FaultPlan::new(chaos_seed()).arm(points::QUEUE_DEQUEUE, FaultSpec::delay_ms(300)),
    );
    let req = ScheduleRequest { deadline_ms: Some(100), ..small_request() };
    let t0 = Instant::now();
    let err = client.schedule(req).unwrap_err();
    let waited = t0.elapsed();
    assert_eq!(err, SvcError::DeadlineExceeded);
    assert!(
        waited < Duration::from_secs(2),
        "the client must not wait meaningfully past its deadline: {waited:?}"
    );

    let m = svc.metrics();
    assert!(
        eventually(Duration::from_secs(5), || Metrics::get(&m.deadline_expired) == 1),
        "the worker records the expiry when it finally pops the job"
    );
    assert_eq!(Metrics::get(&m.pipeline_runs), 0, "expired work must never run");

    // The delay disarmed itself; the service is healthy again.
    svc.faults().clear();
    assert_eq!(client.schedule(small_request()).unwrap().outcome, Outcome::Miss);

    svc.shutdown();
    cleanup(&dir);
}

#[test]
fn stalled_client_is_cut_off_and_the_service_stays_live() {
    let dir = temp_dir("stall");
    let svc = Arc::new(Service::start(ServiceConfig::new(&dir)).unwrap());
    let tuning = ServerTuning {
        read_poll: Duration::from_millis(50),
        write_timeout: Duration::from_secs(2),
        stall_timeout: Duration::from_millis(300),
    };
    let server = serve_with("127.0.0.1:0", Arc::clone(&svc), tuning).unwrap();
    let addr = server.local_addr();

    // A peer that starts a frame and never finishes it: promises 64 bytes,
    // sends 3, goes silent while holding the handler mid-frame.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(b"164\nabc").unwrap();
    stalled.flush().unwrap();
    stalled.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    let t0 = Instant::now();
    let n = stalled.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "the server must hang up on a stalled peer, not answer it");
    assert!(
        t0.elapsed() < Duration::from_secs(4),
        "the cutoff happens at the stall timeout, not at the read timeout"
    );

    // The service itself never noticed: a well-behaved client is served.
    let mut client = NetClient::connect(addr).unwrap();
    assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);
    let Response::Schedule(resp) = client.request(&Request::Schedule(small_request())).unwrap()
    else {
        panic!("expected a schedule response");
    };
    assert_eq!(resp.outcome, Outcome::Miss);

    // The stalled peer's handler thread was reaped, not leaked.
    drop(stalled);
    assert!(
        eventually(Duration::from_secs(5), || server.live_connections() <= 1),
        "only the live client's handler may remain, got {}",
        server.live_connections()
    );

    server.request_stop();
    server.join();
    cleanup(&dir);
}

#[test]
fn idempotent_requests_retry_across_a_dropped_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // First connection: accepted and dropped unread, as a crashing
        // server would. Second connection: served.
        let (first, _) = listener.accept().unwrap();
        drop(first);
        let (mut second, _) = listener.accept().unwrap();
        let mut reader = std::io::BufReader::new(second.try_clone().unwrap());
        let payload = read_frame(&mut reader).unwrap().unwrap();
        assert!(matches!(Request::decode(&payload), Ok(Request::Ping)));
        write_frame(&mut second, &Response::Pong.encode()).unwrap();
    });

    let mut client = NetClient::connect(addr).unwrap();
    let policy = RetryPolicy {
        attempts: 4,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(80),
        seed: chaos_seed(),
    };
    let t0 = Instant::now();
    let resp = client.request_with_retry(&Request::Ping, &policy).unwrap();
    assert_eq!(resp, Response::Pong);
    // Bounded wait: at worst all backoffs plus slack, never an open-ended
    // hang.
    let budget: Duration = (1..policy.attempts).map(|r| policy.backoff(r)).sum();
    assert!(
        t0.elapsed() < budget + Duration::from_secs(5),
        "retries must stay inside the backoff budget: {:?}",
        t0.elapsed()
    );
    server.join().unwrap();
}

#[test]
fn non_idempotent_requests_are_never_retried() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client = NetClient::connect(addr).unwrap();
    let (first, _) = listener.accept().unwrap();
    drop(first); // the SHUTDOWN's connection dies before any reply

    let policy = RetryPolicy {
        attempts: 4,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(80),
        seed: chaos_seed(),
    };
    client.request_with_retry(&Request::Shutdown, &policy).unwrap_err();

    // A retry would have had to reconnect; prove no second connection was
    // ever attempted.
    listener.set_nonblocking(true).unwrap();
    let deadline = Instant::now() + Duration::from_millis(400);
    while Instant::now() < deadline {
        assert!(listener.accept().is_err(), "a SHUTDOWN must not be resent");
        std::thread::sleep(Duration::from_millis(20));
    }
}
