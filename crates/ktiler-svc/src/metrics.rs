//! Atomic service metrics: counters and latency histograms.
//!
//! Everything here is lock-free (`AtomicU64` with relaxed ordering —
//! counters are monotone and read only for reporting) so the hot request
//! path never serializes on the metrics registry. The registry renders to
//! JSON for the `STATS` request and the shutdown dump.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two microsecond buckets in a histogram: bucket `i`
/// counts samples in `[2^i, 2^(i+1))` µs (bucket 0 also catches sub-µs
/// samples), so the top bucket starts at `2^30` µs ≈ 18 minutes.
const BUCKETS: usize = 31;

/// A lock-free latency histogram over power-of-two microsecond buckets.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound (exclusive, in µs) of the bucket containing the `q`
    /// quantile, or 0 with no samples. Quantiles are bucket-resolution
    /// approximations — fine for a service dashboard, not for benchmarks
    /// (the bench bins keep exact per-request latencies and sort).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// Renders the histogram summary as a JSON object.
    pub fn to_json(&self) -> String {
        let count = self.count();
        let sum = self.sum_us.load(Ordering::Relaxed);
        let mean = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
        format!(
            "{{\"count\": {count}, \"mean_us\": {mean:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {}, \"max_us\": {}}}",
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.quantile_us(0.999),
            self.max_us.load(Ordering::Relaxed)
        )
    }
}

/// The service's metrics registry.
///
/// Counter semantics (all monotone):
///
/// * `requests` — schedule requests accepted into the queue.
/// * `cache_hits` — requests answered from a verified on-disk artifact.
/// * `cache_misses` — requests that found no artifact and computed one.
/// * `verify_failures` — artifacts that failed parse or verification on
///   load and were transparently recomputed (each also counts the request
///   toward `cache_misses`' recompute path, reported as `RECOMPUTE`).
/// * `sheds` — requests rejected because the queue was full.
/// * `deadline_expired` — requests dropped because their deadline passed
///   before a worker picked them up.
/// * `coalesced` — requests attached to an identical in-flight request
///   (single-flight followers; they never ran the pipeline).
/// * `pipeline_runs` — actual tiling computations (Algorithm 1 + 2).
/// * `analysis_runs` — analyze + calibrate passes (misses of the
///   in-memory workload memo).
/// * `store_failures` — artifacts that could not be persisted (the
///   response is still served; only the cache write is lost).
/// * `errors` — requests that failed with a pipeline or bad-request error.
/// * `worker_panics` — panics caught by a worker while running a request;
///   each one produced a structured response (degraded or
///   `SvcError::Internal`), never a hung client.
/// * `workers_respawned` — crashed worker threads replaced by the
///   supervisor, so the pool never shrinks.
/// * `degraded_total` — requests answered with a verified **untiled**
///   schedule (`Outcome::DegradedUntiled`) because the cache-aware
///   pipeline failed.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Schedule requests accepted into the queue.
    pub requests: AtomicU64,
    /// Requests answered from a verified on-disk artifact.
    pub cache_hits: AtomicU64,
    /// Requests that found no artifact and computed one.
    pub cache_misses: AtomicU64,
    /// Artifacts failing parse/verify on load, recomputed.
    pub verify_failures: AtomicU64,
    /// Requests rejected because the queue was full.
    pub sheds: AtomicU64,
    /// Requests whose deadline passed while queued.
    pub deadline_expired: AtomicU64,
    /// Single-flight followers served by a leader's run.
    pub coalesced: AtomicU64,
    /// Actual tiling computations.
    pub pipeline_runs: AtomicU64,
    /// Analyze + calibrate passes (workload-memo misses).
    pub analysis_runs: AtomicU64,
    /// Artifact persists that failed (response still served).
    pub store_failures: AtomicU64,
    /// Requests that failed with an error.
    pub errors: AtomicU64,
    /// Panics caught by workers while running a request.
    pub worker_panics: AtomicU64,
    /// Crashed workers replaced by the supervisor.
    pub workers_respawned: AtomicU64,
    /// Requests served a verified untiled schedule after a pipeline
    /// failure.
    pub degraded_total: AtomicU64,
    /// Local cache misses filled from a peer node's cache (the artifact
    /// was fetched, re-verified locally, stored and served).
    pub peer_fills: AtomicU64,
    /// Peer fetch attempts that did not produce a usable artifact
    /// (transport failure, key not held, parse or verification failure) —
    /// each one fell through to a local recompute, never an error.
    pub peer_fetch_failures: AtomicU64,
    /// `FETCH` requests this node answered from its cache for a peer.
    pub fetches_served: AtomicU64,
    /// Artifacts stored via `PUT` (gateway hot-key replication).
    pub replica_stores: AtomicU64,
    /// Stores skipped because the cache volume was out of space — the
    /// response was still served from the computed schedule; only the
    /// persist was bypassed (cache-bypass degradation, never an error).
    pub store_skipped: AtomicU64,
    /// Quarantine renames that themselves failed — the bad artifact is
    /// still on disk under its live name and will be retried or replaced
    /// by the recompute's store.
    pub quarantine_failures: AtomicU64,
    /// Artifacts evicted by the size-budget sweeper (LRU by mtime).
    pub cache_evictions: AtomicU64,
    /// Torn temporary files removed during cache open (uncommitted
    /// writes left by a crash mid-store).
    pub tmp_recovered: AtomicU64,
    /// `DIGEST` requests this node answered for a peer.
    pub digests_served: AtomicU64,
    /// Anti-entropy rounds completed (periodic or `SYNC`-triggered).
    pub sync_rounds: AtomicU64,
    /// Artifacts pulled from peers by anti-entropy and stored locally.
    pub sync_pulls: AtomicU64,
    /// Anti-entropy pull attempts that produced no stored artifact
    /// (transport failure, key vanished, parse failure, store failure).
    pub sync_pull_failures: AtomicU64,
    /// Latency of the block-analysis pass alone (`kgraph::analyze_fast`),
    /// recorded once per memo-miss recompute.
    pub analyze_latency: LatencyHistogram,
    /// Latency of the tiling computation.
    pub tile_latency: LatencyHistogram,
    /// Latency of artifact load + verify.
    pub cache_load_latency: LatencyHistogram,
    /// End-to-end pipeline latency (leader's view, excluding queueing).
    pub total_latency: LatencyHistogram,
}

/// Increments a counter by one (relaxed).
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

impl Metrics {
    /// Current value of a counter.
    pub fn get(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Renders the full registry as a JSON object.
    pub fn to_json(&self) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "{{\n  \"requests\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"verify_failures\": {},\n  \"sheds\": {},\n  \"deadline_expired\": {},\n  \
             \"coalesced\": {},\n  \"pipeline_runs\": {},\n  \"analysis_runs\": {},\n  \
             \"store_failures\": {},\n  \"errors\": {},\n  \"worker_panics\": {},\n  \
             \"workers_respawned\": {},\n  \"degraded_total\": {},\n  \"peer_fills\": {},\n  \
             \"peer_fetch_failures\": {},\n  \"fetches_served\": {},\n  \
             \"replica_stores\": {},\n  \"store_skipped\": {},\n  \
             \"quarantine_failures\": {},\n  \"cache_evictions\": {},\n  \
             \"tmp_recovered\": {},\n  \"digests_served\": {},\n  \
             \"sync_rounds\": {},\n  \"sync_pulls\": {},\n  \
             \"sync_pull_failures\": {},\n  \"latency_us\": {{\n    \
             \"analyze\": {},\n    \"tile\": {},\n    \"cache_load\": {},\n    \"total\": {}\n  \
             }}\n}}",
            c(&self.requests),
            c(&self.cache_hits),
            c(&self.cache_misses),
            c(&self.verify_failures),
            c(&self.sheds),
            c(&self.deadline_expired),
            c(&self.coalesced),
            c(&self.pipeline_runs),
            c(&self.analysis_runs),
            c(&self.store_failures),
            c(&self.errors),
            c(&self.worker_panics),
            c(&self.workers_respawned),
            c(&self.degraded_total),
            c(&self.peer_fills),
            c(&self.peer_fetch_failures),
            c(&self.fetches_served),
            c(&self.replica_stores),
            c(&self.store_skipped),
            c(&self.quarantine_failures),
            c(&self.cache_evictions),
            c(&self.tmp_recovered),
            c(&self.digests_served),
            c(&self.sync_rounds),
            c(&self.sync_pulls),
            c(&self.sync_pull_failures),
            self.analyze_latency.to_json(),
            self.tile_latency.to_json(),
            self.cache_load_latency.to_json(),
            self.total_latency.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [1u64, 3, 100, 1000, 1000, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        // p50 falls in the 1000 µs bucket's range? rank 3 → the 100 µs
        // sample's bucket [64,128) → upper bound 128.
        assert_eq!(h.quantile_us(0.5), 128);
        assert_eq!(h.quantile_us(0.99), 1 << 10);
        let json = h.to_json();
        assert!(json.contains("\"count\": 6"), "{json}");
        assert!(json.contains("\"max_us\": 1000"), "{json}");
        assert!(json.contains("\"p999_us\""), "{json}");
        // With 6 samples, p99 and p999 both resolve to the last sample's
        // bucket.
        assert_eq!(h.quantile_us(0.999), 1 << 10);
    }

    #[test]
    fn sub_microsecond_samples_land_in_bucket_zero() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(5));
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(1.0), 2);
    }

    #[test]
    fn registry_renders_every_counter() {
        let m = Metrics::default();
        bump(&m.requests);
        bump(&m.cache_hits);
        m.total_latency.record(Duration::from_millis(2));
        let json = m.to_json();
        for field in [
            "requests",
            "cache_hits",
            "cache_misses",
            "verify_failures",
            "sheds",
            "deadline_expired",
            "coalesced",
            "pipeline_runs",
            "analysis_runs",
            "store_failures",
            "errors",
            "worker_panics",
            "workers_respawned",
            "degraded_total",
            "peer_fills",
            "peer_fetch_failures",
            "fetches_served",
            "replica_stores",
            "store_skipped",
            "quarantine_failures",
            "cache_evictions",
            "tmp_recovered",
            "digests_served",
            "sync_rounds",
            "sync_pulls",
            "sync_pull_failures",
            "latency_us",
        ] {
            assert!(json.contains(&format!("\"{field}\"")), "{field} missing from {json}");
        }
        assert!(json.contains("\"requests\": 1"), "{json}");
    }
}
