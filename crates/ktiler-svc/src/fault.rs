//! Deterministic fault injection and panic-containment primitives.
//!
//! The service's hot paths are compiled with **named fault points**
//! ([`points`]): cache load/store, the pipeline stages (frame I/O,
//! analyze, calibrate, schedule) and the queue dequeue. In production the
//! injector is inert — each point costs one relaxed atomic load. A test
//! arms a seeded [`FaultPlan`] against the service's [`FaultInjector`],
//! and the named points then fire as panics, [`io::Error`]s or injected
//! delays on the Nth hit, deterministically: the same plan against the
//! same request sequence fires the same faults with the same (seeded)
//! delay jitter.
//!
//! The module also owns the **poison-recovery** lock helpers
//! ([`lock`], [`cv_wait`], [`cv_wait_timeout`]): a panic while a
//! `Mutex` guard is live poisons the mutex, and `.lock().expect(..)`
//! would then convert every later access into a second panic — one
//! injected fault cascading into a dead service. All service locks go
//! through these helpers instead, which take the poisoned guard and move
//! on; every structure they protect (queues, memo tables, waiter lists)
//! is valid after any prefix of its mutations, so recovering the guard is
//! sound. `scripts/check.sh` greps the non-test sources of this crate to
//! keep bare `.lock().expect(` / `.unwrap()` from creeping back in.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

use gpu_sim::SplitMix64;

/// The named fault points compiled into the service.
pub mod points {
    /// Before the cache probe (artifact load + verify).
    pub const CACHE_LOAD: &str = "cache.load";
    /// Before the artifact store.
    pub const CACHE_STORE: &str = "cache.store";
    /// Before the synthetic frame pair is built (the workload's frame I/O).
    pub const FRAME_IO: &str = "frame.io";
    /// Before block-level analysis.
    pub const PIPELINE_ANALYZE: &str = "pipeline.analyze";
    /// Before calibration.
    pub const PIPELINE_CALIBRATE: &str = "pipeline.calibrate";
    /// Before the tiling computation (Algorithms 1 + 2).
    pub const PIPELINE_SCHEDULE: &str = "pipeline.schedule";
    /// After a worker is woken with work available, before it pops the
    /// job — a panic here kills the worker but loses no job.
    pub const QUEUE_DEQUEUE: &str = "queue.dequeue";
    /// Before a node asks its peers to fill a local cache miss — an
    /// injected failure here skips the peer read-through entirely and the
    /// node recomputes, exercising the "peers unreachable" path without
    /// needing dead sockets.
    pub const PEER_FETCH: &str = "peer.fetch";
    /// Before the store fsyncs the freshly written temporary file — a
    /// delay here holds the artifact in its *uncommitted* (tmp) state,
    /// which is the window a SIGKILL must be able to hit without ever
    /// corrupting the committed artifact; an io fault models a failed
    /// sync (the store aborts, nothing is renamed).
    pub const CACHE_FSYNC: &str = "cache.fsync";
    /// Where the store checks for disk-space exhaustion — an io fault
    /// here models ENOSPC and must degrade the node to cache-bypass
    /// (serve without persisting, `store_skipped`), never an error.
    pub const CACHE_ENOSPC: &str = "cache.enospc";
    /// Before the size-budget sweeper scans the cache directory — a
    /// fault here models a sweep racing eviction against concurrent
    /// stores and loads.
    pub const CACHE_SWEEP: &str = "cache.sweep";
}

/// What an armed fault does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with an "injected fault" message.
    Panic,
    /// Return an [`io::Error`] carrying this message (only meaningful at
    /// points fired through [`FaultInjector::fire_io`]; at a plain
    /// [`FaultInjector::fire`] point it escalates to a panic).
    Io(String),
    /// Sleep for this base duration plus a seeded jitter of up to a
    /// quarter of it.
    Delay(Duration),
}

/// One armed fault: what to do, when to start, how often.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The action taken when the fault fires.
    pub kind: FaultKind,
    /// Hits of the point to let pass before the first firing (0 = fire on
    /// the very first hit).
    pub skip: u64,
    /// Maximum number of firings before the fault disarms itself.
    pub times: u64,
}

impl FaultSpec {
    fn new(kind: FaultKind) -> Self {
        FaultSpec { kind, skip: 0, times: 1 }
    }

    /// A fault that panics, once, on the first hit.
    pub fn panic() -> Self {
        Self::new(FaultKind::Panic)
    }

    /// A fault that returns an [`io::Error`] with this message, once, on
    /// the first hit.
    pub fn io(message: impl Into<String>) -> Self {
        Self::new(FaultKind::Io(message.into()))
    }

    /// A fault that sleeps for `ms` milliseconds (plus seeded jitter),
    /// once, on the first hit.
    pub fn delay_ms(ms: u64) -> Self {
        Self::new(FaultKind::Delay(Duration::from_millis(ms)))
    }

    /// Lets the first `n` hits pass before firing (fire on hit `n + 1`).
    pub fn skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Fires up to `n` times instead of once.
    pub fn times(mut self, n: u64) -> Self {
        self.times = n;
        self
    }
}

/// A seeded set of armed fault points, built once and loaded into a
/// [`FaultInjector`]. The seed drives the jitter of [`FaultKind::Delay`]
/// faults; two plans with equal seeds and arms behave identically.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    arms: Vec<(String, FaultSpec)>,
}

impl FaultPlan {
    /// An empty plan with this seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, arms: Vec::new() }
    }

    /// Arms `spec` at `point` (builder-style).
    pub fn arm(mut self, point: &str, spec: FaultSpec) -> Self {
        self.arms.push((point.to_string(), spec));
        self
    }

    /// Parses a plan from the compact text grammar used by the
    /// `ktiler_serve --fault` flag and the `KTILER_FAULTS` environment
    /// variable, so external harnesses (the crash-recovery smoke in
    /// `scripts/check.sh`) can arm the same deterministic faults the
    /// in-process chaos tests do.
    ///
    /// Grammar — `;`-separated entries, the first may set the seed:
    ///
    /// ```text
    /// plan  := [ "seed=" N ";" ] spec ( ";" spec )*
    /// spec  := point "=" kind
    /// kind  := "panic" | "io" [ ":" msg ] | "delay:" ms
    ///          — each optionally followed by ":skip" N and/or ":x" N
    /// ```
    ///
    /// Examples: `cache.fsync=delay:30000`,
    /// `seed=7;cache.store=io:disk full:x3;queue.dequeue=panic:skip2`.
    /// The io message may not contain `:`.
    ///
    /// # Errors
    ///
    /// A description of the first malformed entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new(0);
        for (i, entry) in text.split(';').enumerate() {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (point, action) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry {entry:?}: expected point=kind"))?;
            if i == 0 && point == "seed" {
                plan.seed = action.parse().map_err(|e| format!("fault seed {action:?}: {e}"))?;
                continue;
            }
            let mut segs = action.split(':');
            let kind_name = segs.next().unwrap_or("");
            let mut rest: Vec<&str> = segs.collect();
            let parse_n = |seg: &str, prefix: &str| -> Result<u64, String> {
                seg[prefix.len()..]
                    .parse()
                    .map_err(|e| format!("fault entry {entry:?}: bad {prefix} count: {e}"))
            };
            let mut spec = match kind_name {
                "panic" => FaultSpec::panic(),
                "io" => {
                    let msg = if rest
                        .first()
                        .is_some_and(|s| !s.starts_with("skip") && !s.starts_with('x'))
                    {
                        rest.remove(0)
                    } else {
                        "injected io fault"
                    };
                    FaultSpec::io(msg)
                }
                "delay" => {
                    if rest.is_empty() {
                        return Err(format!("fault entry {entry:?}: delay needs :ms"));
                    }
                    let ms = rest.remove(0);
                    FaultSpec::delay_ms(ms.parse().map_err(|e| format!("fault delay {ms:?}: {e}"))?)
                }
                other => return Err(format!("fault entry {entry:?}: unknown kind {other:?}")),
            };
            for seg in rest {
                if seg.starts_with("skip") {
                    spec = spec.skip(parse_n(seg, "skip")?);
                } else if seg.starts_with('x') {
                    spec = spec.times(parse_n(seg, "x")?);
                } else {
                    return Err(format!("fault entry {entry:?}: unknown option {seg:?}"));
                }
            }
            plan = plan.arm(point, spec);
        }
        Ok(plan)
    }

    /// Whether the plan arms no points (parsing an empty string, or a
    /// string that only set the seed, yields an empty plan).
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }
}

/// Per-point arming state.
#[derive(Debug)]
struct Armed {
    spec: FaultSpec,
    hits: u64,
    fired: u64,
}

#[derive(Debug, Default)]
struct InjectorState {
    seed: u64,
    arms: HashMap<String, Armed>,
    total_fired: u64,
}

/// The runtime side of fault injection: owned by the service, shared with
/// tests that arm plans against it. Inert (one relaxed atomic load per
/// point) until a plan is loaded.
#[derive(Debug, Default)]
pub struct FaultInjector {
    enabled: AtomicBool,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// A new, inert injector.
    pub fn inert() -> Arc<Self> {
        Arc::new(FaultInjector::default())
    }

    /// Replaces the armed set with `plan`'s and enables the injector.
    /// Hit and fire counters restart from zero.
    pub fn load_plan(&self, plan: &FaultPlan) {
        let mut st = lock(&self.state);
        st.seed = plan.seed;
        st.arms.clear();
        for (point, spec) in &plan.arms {
            st.arms.insert(point.clone(), Armed { spec: spec.clone(), hits: 0, fired: 0 });
        }
        st.total_fired = 0;
        self.enabled.store(!st.arms.is_empty(), Ordering::SeqCst);
    }

    /// Disarms every point and returns the injector to its inert state.
    pub fn clear(&self) {
        self.enabled.store(false, Ordering::SeqCst);
        let mut st = lock(&self.state);
        st.arms.clear();
        st.total_fired = 0;
    }

    /// Total firings (all points) since the last plan load.
    pub fn total_fired(&self) -> u64 {
        lock(&self.state).total_fired
    }

    /// Firings of one point since the last plan load.
    pub fn fired(&self, point: &str) -> u64 {
        lock(&self.state).arms.get(point).map_or(0, |a| a.fired)
    }

    /// Decides whether this hit of `point` fires; returns the action and
    /// the firing ordinal (1-based). Updates the counters.
    fn trigger(&self, point: &str) -> Option<(FaultKind, u64)> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let mut st = lock(&self.state);
        let seed = st.seed;
        let armed = st.arms.get_mut(point)?;
        armed.hits += 1;
        if armed.hits <= armed.spec.skip || armed.fired >= armed.spec.times {
            return None;
        }
        armed.fired += 1;
        let firing = armed.fired;
        let mut kind = armed.spec.kind.clone();
        if let FaultKind::Delay(base) = &mut kind {
            *base += delay_jitter(seed, point, firing, *base);
        }
        st.total_fired += 1;
        Some((kind, firing))
    }

    /// Hits a fault point on an I/O-shaped path: may panic, sleep, or
    /// return an injected error.
    ///
    /// # Errors
    ///
    /// The injected [`io::Error`] when an armed [`FaultKind::Io`] fires.
    ///
    /// # Panics
    ///
    /// When an armed [`FaultKind::Panic`] fires.
    pub fn fire_io(&self, point: &str) -> io::Result<()> {
        match self.trigger(point) {
            None => Ok(()),
            Some((FaultKind::Panic, n)) => {
                panic!("injected fault: {point} (firing {n})")
            }
            Some((FaultKind::Io(msg), n)) => {
                Err(io::Error::other(format!("injected fault: {point} (firing {n}): {msg}")))
            }
            Some((FaultKind::Delay(d), _)) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }

    /// Hits a fault point on a non-I/O path: may panic or sleep. An armed
    /// [`FaultKind::Io`] here escalates to a panic — the point has no
    /// error channel to surface it on, and silently swallowing an armed
    /// fault would make a chaos run lie.
    ///
    /// # Panics
    ///
    /// When an armed [`FaultKind::Panic`] or [`FaultKind::Io`] fires.
    pub fn fire(&self, point: &str) {
        if let Err(e) = self.fire_io(point) {
            panic!("{e} (io fault armed at a non-io point)");
        }
    }
}

/// Seeded, deterministic jitter for delay faults: up to a quarter of the
/// base delay, derived from (plan seed, point name, firing ordinal).
fn delay_jitter(seed: u64, point: &str, firing: u64, base: Duration) -> Duration {
    let quarter = base.as_nanos() as u64 / 4;
    if quarter == 0 {
        return Duration::ZERO;
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in point.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = SplitMix64::new(seed ^ h ^ firing);
    Duration::from_nanos(rng.next_u64() % (quarter + 1))
}

/// Locks a mutex, recovering from poisoning: if a panicking thread
/// poisoned it, the guard is taken anyway. Sound for every structure this
/// crate protects — all are valid after any prefix of their mutations —
/// and essential for containment: one caught panic must not convert every
/// later lock into a second panic.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// [`Condvar::wait`] with the same poison recovery as [`lock`].
pub fn cv_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// [`Condvar::wait_timeout`] with the same poison recovery as [`lock`].
pub fn cv_wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    match cv.wait_timeout(guard, timeout) {
        Ok(r) => r,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Renders a caught panic payload (from [`std::panic::catch_unwind`]) as a
/// message, for conversion into a structured error.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn inert_injector_never_fires() {
        let inj = FaultInjector::inert();
        for _ in 0..100 {
            inj.fire_io(points::CACHE_LOAD).unwrap();
            inj.fire(points::QUEUE_DEQUEUE);
        }
        assert_eq!(inj.total_fired(), 0);
    }

    #[test]
    fn io_fault_fires_on_the_nth_hit_and_disarms() {
        let inj = FaultInjector::inert();
        inj.load_plan(
            &FaultPlan::new(7).arm(points::CACHE_STORE, FaultSpec::io("disk full").skip(2)),
        );
        assert!(inj.fire_io(points::CACHE_STORE).is_ok(), "hit 1 passes");
        assert!(inj.fire_io(points::CACHE_STORE).is_ok(), "hit 2 passes");
        let err = inj.fire_io(points::CACHE_STORE).unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
        assert!(inj.fire_io(points::CACHE_STORE).is_ok(), "disarmed after one firing");
        assert_eq!(inj.fired(points::CACHE_STORE), 1);
        assert_eq!(inj.total_fired(), 1);
        // Other points are untouched.
        assert!(inj.fire_io(points::CACHE_LOAD).is_ok());
    }

    #[test]
    fn times_bounds_repeat_firings() {
        let inj = FaultInjector::inert();
        inj.load_plan(&FaultPlan::new(1).arm(points::FRAME_IO, FaultSpec::io("x").times(2)));
        assert!(inj.fire_io(points::FRAME_IO).is_err());
        assert!(inj.fire_io(points::FRAME_IO).is_err());
        assert!(inj.fire_io(points::FRAME_IO).is_ok());
        assert_eq!(inj.fired(points::FRAME_IO), 2);
    }

    #[test]
    fn panic_fault_panics_and_is_catchable() {
        let inj = FaultInjector::inert();
        inj.load_plan(&FaultPlan::new(1).arm(points::PIPELINE_SCHEDULE, FaultSpec::panic()));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.fire(points::PIPELINE_SCHEDULE)
        }));
        let payload = r.expect_err("armed panic must fire");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("pipeline.schedule"), "{msg}");
        // After the panic the injector (and its lock) still works.
        assert_eq!(inj.total_fired(), 1);
        inj.fire(points::PIPELINE_SCHEDULE);
    }

    #[test]
    fn delay_fault_sleeps_with_deterministic_seeded_jitter() {
        let measured = |seed: u64| {
            let inj = FaultInjector::inert();
            inj.load_plan(
                &FaultPlan::new(seed).arm(points::QUEUE_DEQUEUE, FaultSpec::delay_ms(20)),
            );
            let t0 = Instant::now();
            inj.fire(points::QUEUE_DEQUEUE);
            t0.elapsed()
        };
        let d = measured(42);
        assert!(d >= Duration::from_millis(20), "slept at least the base: {d:?}");
        // The jitter itself is a pure function of (seed, point, firing).
        let base = Duration::from_millis(20);
        let j1 = delay_jitter(42, points::QUEUE_DEQUEUE, 1, base);
        let j2 = delay_jitter(42, points::QUEUE_DEQUEUE, 1, base);
        assert_eq!(j1, j2, "equal seeds give equal jitter");
        assert!(j1 <= base / 4, "jitter bounded by a quarter of the base");
        assert_ne!(
            delay_jitter(42, points::QUEUE_DEQUEUE, 1, base),
            delay_jitter(43, points::QUEUE_DEQUEUE, 1, base),
            "seed changes the jitter"
        );
    }

    #[test]
    fn clear_disarms_everything() {
        let inj = FaultInjector::inert();
        inj.load_plan(&FaultPlan::new(1).arm(points::CACHE_LOAD, FaultSpec::io("x").times(100)));
        assert!(inj.fire_io(points::CACHE_LOAD).is_err());
        inj.clear();
        assert!(inj.fire_io(points::CACHE_LOAD).is_ok());
        assert_eq!(inj.total_fired(), 0);
    }

    #[test]
    fn lock_recovers_from_poisoning() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().expect("first lock");
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        let mut g = lock(&m);
        *g += 1;
        assert_eq!(*g, 8);
    }

    #[test]
    fn plan_parser_round_trips_the_grammar() {
        let plan = FaultPlan::parse("seed=9;cache.fsync=delay:30000;cache.store=io:disk full:x3")
            .expect("parse");
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.arms.len(), 2);
        assert_eq!(plan.arms[0], (points::CACHE_FSYNC.to_string(), FaultSpec::delay_ms(30000)));
        assert_eq!(
            plan.arms[1],
            (points::CACHE_STORE.to_string(), FaultSpec::io("disk full").times(3))
        );

        let plan = FaultPlan::parse("queue.dequeue=panic:skip2;cache.enospc=io").expect("parse");
        assert_eq!(plan.seed, 0);
        assert_eq!(plan.arms[0].1, FaultSpec::panic().skip(2));
        assert_eq!(plan.arms[1].1, FaultSpec::io("injected io fault"));

        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
        assert!(FaultPlan::parse("seed=4").expect("seed only").is_empty());
        assert!(FaultPlan::parse("nonsense").is_err(), "missing =");
        assert!(FaultPlan::parse("p=warp").is_err(), "unknown kind");
        assert!(FaultPlan::parse("p=delay").is_err(), "delay without ms");
        assert!(FaultPlan::parse("p=io:skipx").is_err(), "bad skip count");
    }

    #[test]
    fn parsed_plan_fires_like_a_built_one() {
        let inj = FaultInjector::inert();
        let plan = FaultPlan::parse("cache.store=io:full:skip1:x2").expect("parse");
        inj.load_plan(&plan);
        assert!(inj.fire_io(points::CACHE_STORE).is_ok(), "skip 1");
        assert!(inj.fire_io(points::CACHE_STORE).is_err());
        assert!(inj.fire_io(points::CACHE_STORE).is_err());
        assert!(inj.fire_io(points::CACHE_STORE).is_ok(), "disarmed after x2");
    }

    #[test]
    fn panic_message_decodes_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(17u8);
        assert!(panic_message(s.as_ref()).contains("non-string"));
    }
}
