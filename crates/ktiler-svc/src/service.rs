//! The scheduling service: request types, worker pool, bounded queue,
//! single-flight deduplication and the cached pipeline.
//!
//! A request names a workload and an operating point; the service answers
//! with a verified schedule, preferring a content-addressed artifact from
//! the on-disk cache over recomputation. Concurrency shape:
//!
//! * **Bounded queue, shed on full** — `submit` never blocks: when the
//!   queue is at capacity the request is rejected immediately with
//!   [`SvcError::Shed`]. Under overload it is better to fail fast (the
//!   client can retry, back off or fall back to computing locally) than to
//!   build an unbounded backlog of requests that will all miss their
//!   deadlines anyway.
//! * **Per-request deadlines** — a job whose deadline passes while queued
//!   is dropped by the worker that dequeues it ([`SvcError::DeadlineExceeded`]);
//!   the waiting client enforces the same deadline on its side.
//! * **Single-flight** — identical requests (same workload, same operating
//!   point) that arrive while one is being computed attach to that
//!   computation instead of starting their own; N concurrent identical
//!   requests run the pipeline exactly once.
//!
//! Failure shape (see `DESIGN.md` §12 and the [`crate::fault`] module):
//! workers run each job under `catch_unwind`, so a panic becomes a
//! structured [`SvcError::Internal`] instead of a hung client; a
//! supervisor respawns any crashed worker so the pool never shrinks; all
//! locks recover from poisoning; and a failed pipeline degrades to a
//! verified **untiled** schedule ([`Outcome::DegradedUntiled`]) rather
//! than an error whenever that fallback itself succeeds.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_sim::{FreqConfig, GpuConfig};
use hsoptflow::{build_app, synthetic_pair, HsParams, OptFlowApp};
use kgraph::GraphTrace;
use ktiler::{
    calibrate, ktiler_schedule, schedule_from_text, schedule_to_text, verify_schedule,
    CalibrationConfig, KtilerConfig, Schedule, TileParams,
};

use crate::cache::{CacheProbe, ScheduleCache, StoreOutcome};
use crate::fault::{self, points, FaultInjector};
use crate::key::{schedule_cache_key, CacheKey, KeyHasher};
use crate::metrics::{bump, Metrics};

/// How often the supervisor scans the pool for crashed workers.
const SUPERVISOR_POLL: Duration = Duration::from_millis(10);

/// The workload a schedule is requested for.
///
/// Today the service knows one application family — the paper's
/// HSOpticalFlow pyramid at a configurable scale; the enum leaves room
/// for more without a protocol change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// The HSOpticalFlow application on synthetic frames.
    OptFlow {
        /// Frame width and height in pixels.
        size: u32,
        /// Jacobi iterations per pyramid step.
        iters: u32,
        /// Pyramid levels.
        levels: u32,
    },
}

impl WorkloadSpec {
    /// Checks the spec against the service's sanity bounds, so one absurd
    /// request (a 10⁶-pixel frame, a 10⁵-iteration solve) cannot pin a
    /// worker for hours.
    ///
    /// # Errors
    ///
    /// [`SvcError::BadRequest`] describing the offending field.
    pub fn validate(&self) -> Result<(), SvcError> {
        let WorkloadSpec::OptFlow { size, iters, levels } = *self;
        let bad = |m: String| Err(SvcError::BadRequest(m));
        if !(1..=6).contains(&levels) {
            return bad(format!("levels must be in 1..=6, got {levels}"));
        }
        if !(1..=500).contains(&iters) {
            return bad(format!("iters must be in 1..=500, got {iters}"));
        }
        if !(16..=2048).contains(&size) {
            return bad(format!("size must be in 16..=2048, got {size}"));
        }
        if size >> levels < 4 {
            return bad(format!("size {size} too small for {levels} pyramid levels"));
        }
        Ok(())
    }

    /// Builds the application (graph + device memory) for this spec.
    fn build(&self) -> OptFlowApp {
        let WorkloadSpec::OptFlow { size, iters, levels } = *self;
        let p = HsParams { levels, jacobi_iters: iters, warp_iters: 1, alpha2: 0.1 };
        let (f0, f1) = synthetic_pair(size, size, 1.0, 0.5, 7);
        build_app(&f0, &f1, &p)
    }

    /// Parses the wire form, e.g. `optflow size=64 iters=3 levels=2`.
    /// Omitted fields default to the harness scale (512 / 30 / 3).
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed token.
    pub fn parse(tokens: &[&str]) -> Result<Self, String> {
        let Some((&family, rest)) = tokens.split_first() else {
            return Err("missing workload family".into());
        };
        if family != "optflow" {
            return Err(format!("unknown workload family '{family}' (expected 'optflow')"));
        }
        let (mut size, mut iters, mut levels) = (512u32, 30u32, 3u32);
        for tok in rest {
            let Some((k, v)) = tok.split_once('=') else {
                return Err(format!("malformed token '{tok}' (expected key=value)"));
            };
            let v: u32 = v.parse().map_err(|_| format!("bad value in '{tok}'"))?;
            match k {
                "size" => size = v,
                "iters" => iters = v,
                "levels" => levels = v,
                _ => return Err(format!("unknown workload field '{k}'")),
            }
        }
        Ok(WorkloadSpec::OptFlow { size, iters, levels })
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let WorkloadSpec::OptFlow { size, iters, levels } = self;
        write!(f, "optflow size={size} iters={iters} levels={levels}")
    }
}

/// One schedule request.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// The workload to schedule.
    pub workload: WorkloadSpec,
    /// GPU core clock in MHz.
    pub gpu_mhz: f64,
    /// Effective memory clock in MHz.
    pub mem_mhz: f64,
    /// Optional deadline, measured from submission. `None` waits forever.
    pub deadline_ms: Option<u64>,
}

impl ScheduleRequest {
    /// A request at the default operating point (1324, 5010) and no
    /// deadline.
    pub fn new(workload: WorkloadSpec) -> Self {
        let f = FreqConfig::default();
        ScheduleRequest { workload, gpu_mhz: f.gpu_mhz, mem_mhz: f.mem_mhz, deadline_ms: None }
    }

    /// The single-flight / memo identity of this request: everything that
    /// feeds the pipeline (workload and operating point), excluding the
    /// deadline — two requests differing only in patience are identical
    /// work.
    fn flight_key(&self) -> CacheKey {
        let mut h = KeyHasher::new();
        h.write_str("ktiler-svc request-key v1");
        h.write_str(&self.workload.to_string());
        h.write_f64(self.gpu_mhz);
        h.write_f64(self.mem_mhz);
        h.finish()
    }

    /// The key a multi-node deployment routes this request by: the flight
    /// key, computable from the request line alone. The full
    /// content-addressed artifact key needs analysis + calibration —
    /// exactly the work routing exists to place — so the ring hashes this
    /// cheap surrogate instead; both keys are pure functions of the same
    /// inputs, so a given request always routes to the same shard.
    pub fn routing_key(&self) -> CacheKey {
        self.flight_key()
    }

    fn validate(&self) -> Result<(), SvcError> {
        self.workload.validate()?;
        for (name, v) in [("gpu_mhz", self.gpu_mhz), ("mem_mhz", self.mem_mhz)] {
            if !(v.is_finite() && v > 0.0 && v <= 100_000.0) {
                return Err(SvcError::BadRequest(format!(
                    "{name} must be in (0, 100000], got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from a verified on-disk artifact.
    Hit,
    /// No artifact existed; the pipeline ran and the artifact was stored.
    Miss,
    /// An artifact existed but failed verification; the pipeline ran and
    /// the artifact was replaced.
    Recompute,
    /// The cache-aware pipeline failed; the service fell back to a
    /// verified **untiled** schedule (one launch per kernel, the paper's
    /// baseline order). Correct, never cached, and slower on the device —
    /// degraded, not an outage.
    DegradedUntiled,
    /// No local artifact existed, but a peer node's cache held one; it was
    /// fetched, re-verified locally, stored, and served — the read-through
    /// fill that lets a schedule computed on any node be served from every
    /// node without recomputation.
    PeerFill,
}

impl Outcome {
    /// The wire token of this outcome.
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Hit => "HIT",
            Outcome::Miss => "MISS",
            Outcome::Recompute => "RECOMPUTE",
            Outcome::DegradedUntiled => "DEGRADED",
            Outcome::PeerFill => "PEER_FILL",
        }
    }

    /// Parses a wire token.
    pub fn from_str_token(s: &str) -> Option<Self> {
        match s {
            "HIT" => Some(Outcome::Hit),
            "MISS" => Some(Outcome::Miss),
            "RECOMPUTE" => Some(Outcome::Recompute),
            "DEGRADED" => Some(Outcome::DegradedUntiled),
            "PEER_FILL" => Some(Outcome::PeerFill),
            _ => None,
        }
    }
}

/// A served schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResponse {
    /// How the schedule was produced (single-flight followers inherit
    /// their leader's outcome).
    pub outcome: Outcome,
    /// The content-addressed key of the artifact.
    pub key: CacheKey,
    /// Number of launches in the schedule.
    pub launches: usize,
    /// The schedule in `.sched` text form — byte-identical between the
    /// miss that stored it and every later hit.
    pub text: String,
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcError {
    /// The queue was full; try again later.
    Shed,
    /// The deadline passed before the request was served.
    DeadlineExceeded,
    /// The service is shutting down.
    ShuttingDown,
    /// The request itself is invalid.
    BadRequest(String),
    /// The pipeline failed (analysis, calibration or tiling).
    Pipeline(String),
    /// A worker panicked while running the request; the panic was
    /// contained and converted into this structured response (the waiting
    /// client is answered, never left hung).
    Internal(String),
    /// The peer sent a frame of a protocol version this build does not
    /// speak. The frame was consumed (so this reply could be sent) and the
    /// connection is closed after it — never a silent misparse.
    VersionMismatch {
        /// The version the peer's frame carried.
        got: u8,
        /// The version this build speaks.
        expected: u8,
    },
    /// A `FETCH` for a key this node's cache does not hold — the normal
    /// answer for a peer read-through probe, not a failure of the node.
    NotFound,
}

impl SvcError {
    /// Stable wire code of this error.
    pub fn code(&self) -> &'static str {
        match self {
            SvcError::Shed => "SHED",
            SvcError::DeadlineExceeded => "DEADLINE",
            SvcError::ShuttingDown => "SHUTDOWN",
            SvcError::BadRequest(_) => "BAD_REQUEST",
            SvcError::Pipeline(_) => "PIPELINE",
            SvcError::Internal(_) => "INTERNAL",
            SvcError::VersionMismatch { .. } => "VERSION",
            SvcError::NotFound => "NOT_FOUND",
        }
    }

    /// Reconstructs an error from its wire code and message.
    pub fn from_code(code: &str, message: &str) -> Self {
        match code {
            "SHED" => SvcError::Shed,
            "DEADLINE" => SvcError::DeadlineExceeded,
            "SHUTDOWN" => SvcError::ShuttingDown,
            "BAD_REQUEST" => SvcError::BadRequest(message.to_string()),
            "INTERNAL" => SvcError::Internal(message.to_string()),
            "NOT_FOUND" => SvcError::NotFound,
            "VERSION" => {
                // Wire form "got=X expected=Y"; unparsable fields become 0
                // (the mismatch itself is the signal, not the digits).
                let field = |name: &str| {
                    message
                        .split_whitespace()
                        .find_map(|t| t.strip_prefix(name))
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0)
                };
                SvcError::VersionMismatch { got: field("got="), expected: field("expected=") }
            }
            _ => SvcError::Pipeline(message.to_string()),
        }
    }
}

impl fmt::Display for SvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvcError::Shed => write!(f, "queue full, request shed"),
            SvcError::DeadlineExceeded => write!(f, "deadline exceeded"),
            SvcError::ShuttingDown => write!(f, "service shutting down"),
            SvcError::BadRequest(m) => write!(f, "bad request: {m}"),
            SvcError::Pipeline(m) => write!(f, "pipeline error: {m}"),
            SvcError::Internal(m) => write!(f, "internal error: {m}"),
            SvcError::VersionMismatch { got, expected } => {
                write!(
                    f,
                    "protocol version mismatch: peer sent v{got}, this build speaks v{expected}"
                )
            }
            SvcError::NotFound => write!(f, "no artifact for that key"),
        }
    }
}

impl std::error::Error for SvcError {}

/// Tunables of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory of the content-addressed schedule cache.
    pub cache_dir: PathBuf,
    /// Worker threads consuming the request queue.
    pub workers: usize,
    /// Queue capacity; a submit beyond it sheds.
    pub queue_capacity: usize,
    /// Entries kept in the in-memory workload memo (analyzed + calibrated
    /// workloads). The memo is cleared wholesale when full — crude, but
    /// bounded, and the on-disk schedule cache carries the durable state.
    pub memo_capacity: usize,
    /// Device model used for analysis, calibration and verification.
    pub gpu: GpuConfig,
    /// Merge threshold forwarded to Algorithm 1 (the paper's `thld`).
    pub weight_threshold_ns: f64,
    /// Addresses of peer nodes to read-through-fill from: on a local cache
    /// miss, each peer is asked (`FETCH`) for the artifact before this
    /// node recomputes it. Empty for a single-node deployment.
    pub peers: Vec<String>,
    /// Connect/read/write timeout for one peer fetch attempt. Peers are a
    /// shortcut, not a dependency — a slow peer must cost less than the
    /// recompute it would have saved.
    pub peer_timeout: Duration,
    /// Size budget for the on-disk cache in bytes; `None` leaves the
    /// directory unbounded, `Some(n)` keeps it at or under `n` bytes via
    /// the LRU-by-mtime sweeper (see [`ScheduleCache::sweep`]).
    pub cache_budget_bytes: Option<u64>,
    /// How often the anti-entropy thread runs a repair round against the
    /// configured peers ([`Request::Sync`](crate::proto::Request::Sync)
    /// runs one on demand). `None` disables periodic repair; with no
    /// peers configured the thread is never spawned either way.
    pub sync_interval: Option<Duration>,
}

impl ServiceConfig {
    /// A config with the paper's defaults: 2 workers, a 64-deep queue,
    /// the GTX 960M device model and a 1 µs merge threshold.
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            cache_dir: cache_dir.into(),
            workers: 2,
            queue_capacity: 64,
            memo_capacity: 16,
            gpu: GpuConfig::gtx960m(),
            weight_threshold_ns: 1_000.0,
            peers: Vec::new(),
            peer_timeout: Duration::from_millis(500),
            cache_budget_bytes: None,
            sync_interval: None,
        }
    }
}

/// An analyzed + calibrated workload, shared read-only between workers.
struct Prepared {
    app: OptFlowApp,
    gt: GraphTrace,
    cal: ktiler::Calibration,
    kcfg: KtilerConfig,
    key: CacheKey,
}

/// One waiter's slot for a response.
struct Cell {
    state: Mutex<Option<Result<ScheduleResponse, SvcError>>>,
    cv: Condvar,
}

impl Cell {
    fn new() -> Arc<Self> {
        Arc::new(Cell { state: Mutex::new(None), cv: Condvar::new() })
    }

    fn fulfill(&self, r: Result<ScheduleResponse, SvcError>) {
        let mut st = fault::lock(&self.state);
        if st.is_none() {
            *st = Some(r);
            self.cv.notify_all();
        }
    }

    fn wait(&self, deadline: Option<Instant>) -> Result<ScheduleResponse, SvcError> {
        let mut st = fault::lock(&self.state);
        loop {
            if let Some(r) = st.take() {
                return r;
            }
            match deadline {
                None => st = fault::cv_wait(&self.cv, st),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(SvcError::DeadlineExceeded);
                    }
                    let (guard, _) = fault::cv_wait_timeout(&self.cv, st, d - now);
                    st = guard;
                }
            }
        }
    }
}

/// A claim on a response being computed: handed out by [`Client::submit`],
/// polled without blocking by an event loop ([`Ticket::try_take`]) or
/// awaited by a thread with nothing better to do ([`Ticket::wait`]).
pub struct Ticket {
    cell: Arc<Cell>,
    deadline: Option<Instant>,
}

/// The fulfilling half of a [`Ticket::pair`]: a frontend that answers
/// requests from its own worker threads (the gateway) hands the `Ticket`
/// to the event loop and keeps the sink.
pub struct TicketSink {
    cell: Arc<Cell>,
}

impl Ticket {
    /// An unfulfilled ticket and the sink that fulfills it.
    pub fn pair(deadline: Option<Instant>) -> (Ticket, TicketSink) {
        let cell = Cell::new();
        (Ticket { cell: Arc::clone(&cell), deadline }, TicketSink { cell })
    }

    /// Takes the response if one is ready; `None` means still in flight.
    /// Past the ticket's deadline an unfulfilled ticket yields
    /// [`SvcError::DeadlineExceeded`] — the poller never waits forever on
    /// work that can no longer matter.
    pub fn try_take(&mut self) -> Option<Result<ScheduleResponse, SvcError>> {
        {
            let mut st = fault::lock(&self.cell.state);
            if let Some(r) = st.take() {
                return Some(r);
            }
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(Err(SvcError::DeadlineExceeded));
        }
        None
    }

    /// Blocks until the response is ready or the deadline passes.
    ///
    /// # Errors
    ///
    /// Whatever the computation produced, or [`SvcError::DeadlineExceeded`].
    pub fn wait(self) -> Result<ScheduleResponse, SvcError> {
        self.cell.wait(self.deadline)
    }
}

impl TicketSink {
    /// Fulfills the paired ticket. First fulfillment wins; later calls are
    /// ignored.
    pub fn fulfill(&self, r: Result<ScheduleResponse, SvcError>) {
        self.cell.fulfill(r);
    }
}

struct Job {
    req: ScheduleRequest,
    deadline: Option<Instant>,
    cell: Arc<Cell>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    cfg: ServiceConfig,
    cache: ScheduleCache,
    metrics: Arc<Metrics>,
    faults: Arc<FaultInjector>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    /// The anti-entropy loop sleeps on its own condvar (guarded by the
    /// queue mutex, whose shutdown flag it watches): if it shared
    /// `queue_cv`, an enqueue's `notify_one` could wake the sync thread
    /// instead of a worker and leave the job unserved.
    sync_cv: Condvar,
    /// Single-flight table: flight key → followers waiting on the leader.
    inflight: Mutex<HashMap<CacheKey, Vec<Arc<Cell>>>>,
    /// Workload memo: flight key → prepared workload.
    memo: Mutex<HashMap<CacheKey, Arc<Prepared>>>,
    /// Worker threads currently running their loop; decremented on any
    /// exit, including a panic unwind.
    live_workers: AtomicUsize,
}

/// The scheduling service: owns the worker pool (and the supervisor that
/// keeps it at full strength); hand out [`Client`]s to talk to it.
pub struct Service {
    inner: Arc<Inner>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    sync_thread: Mutex<Option<JoinHandle<()>>>,
}

/// An in-process handle to a [`Service`]; cheap to clone, sharable across
/// threads. Network clients go through `ktiler_serve` instead — both paths
/// drive the identical queue and pipeline.
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Service {
    /// Starts a service: opens the cache directory and spawns the workers
    /// plus the supervisor that respawns any worker that crashes.
    ///
    /// # Errors
    ///
    /// Any error from creating the cache directory or spawning the
    /// threads.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Service> {
        let metrics = Arc::new(Metrics::default());
        let faults = FaultInjector::inert();
        let cache = ScheduleCache::open(&cfg.cache_dir)?
            .with_faults(Arc::clone(&faults))
            .with_metrics(Arc::clone(&metrics))
            .with_budget(cfg.cache_budget_bytes);
        metrics.tmp_recovered.fetch_add(cache.tmp_recovered(), Ordering::Relaxed);
        let workers = cfg.workers.max(1);
        let sync_interval =
            if cfg.peers.is_empty() { None } else { cfg.sync_interval.filter(|d| !d.is_zero()) };
        let inner = Arc::new(Inner {
            cfg,
            cache,
            metrics,
            faults,
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            queue_cv: Condvar::new(),
            sync_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            memo: Mutex::new(HashMap::new()),
            live_workers: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            handles.push(spawn_worker(&inner, i)?);
        }
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ktiler-svc-supervisor".into())
                .spawn(move || supervisor_loop(&inner, handles))?
        };
        let sync_thread = match sync_interval {
            Some(interval) => {
                let inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name("ktiler-svc-anti-entropy".into())
                        .spawn(move || sync_loop(&inner, interval))?,
                )
            }
            None => None,
        };
        Ok(Service {
            inner,
            supervisor: Mutex::new(Some(supervisor)),
            sync_thread: Mutex::new(sync_thread),
        })
    }

    /// A new in-process client.
    pub fn client(&self) -> Client {
        Client { inner: Arc::clone(&self.inner) }
    }

    /// The service's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// The service's fault injector — inert unless a
    /// [`crate::fault::FaultPlan`] is loaded into it (chaos tests do;
    /// production never does).
    pub fn faults(&self) -> Arc<FaultInjector> {
        Arc::clone(&self.inner.faults)
    }

    /// Number of worker threads currently running. Dips below the
    /// configured pool size only for the instant between a worker crash
    /// and its respawn by the supervisor.
    pub fn live_workers(&self) -> usize {
        self.inner.live_workers.load(Ordering::SeqCst)
    }

    /// Renders the metrics registry as JSON.
    pub fn metrics_json(&self) -> String {
        self.inner.metrics.to_json()
    }

    /// Stops accepting requests, finishes the queued ones and joins the
    /// supervisor (which joins the workers). Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = fault::lock(&self.inner.queue);
            q.shutdown = true;
            self.inner.queue_cv.notify_all();
            self.inner.sync_cv.notify_all();
        }
        if let Some(h) = fault::lock(&self.supervisor).take() {
            let _ = h.join();
        }
        if let Some(h) = fault::lock(&self.sync_thread).take() {
            let _ = h.join();
        }
    }
}

/// The anti-entropy loop: one [`Inner::sync_round`] per interval, with a
/// shutdown-aware sleep (its condvar is notified at shutdown, so the
/// thread exits within one wakeup, not one interval).
fn sync_loop(inner: &Arc<Inner>, interval: Duration) {
    loop {
        let next = Instant::now() + interval;
        {
            let mut q = fault::lock(&inner.queue);
            loop {
                if q.shutdown {
                    return;
                }
                let now = Instant::now();
                if now >= next {
                    break;
                }
                let (guard, _) = fault::cv_wait_timeout(&inner.sync_cv, q, next - now);
                q = guard;
            }
        }
        inner.sync_round();
    }
}

fn spawn_worker(inner: &Arc<Inner>, id: usize) -> std::io::Result<JoinHandle<()>> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("ktiler-svc-worker-{id}"))
        .spawn(move || inner.worker_loop())
}

/// Keeps the pool at full strength: any worker that exits while the
/// service is running (i.e. crashed — a clean exit only happens at
/// shutdown) is joined and replaced in place.
fn supervisor_loop(inner: &Arc<Inner>, mut handles: Vec<JoinHandle<()>>) {
    loop {
        if fault::lock(&inner.queue).shutdown {
            for h in handles {
                let _ = h.join();
            }
            return;
        }
        for (id, slot) in handles.iter_mut().enumerate() {
            if !slot.is_finished() {
                continue;
            }
            // Spawn the replacement first so the pool shrinks for at most
            // one poll interval; if the OS refuses, retry next tick.
            if let Ok(fresh) = spawn_worker(inner, id) {
                let crashed = std::mem::replace(slot, fresh);
                let _ = crashed.join();
                bump(&inner.metrics.workers_respawned);
            }
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Client {
    /// Requests a schedule, blocking until it is served, the deadline
    /// passes, or the request is shed.
    ///
    /// # Errors
    ///
    /// See [`SvcError`]; [`SvcError::Shed`] and
    /// [`SvcError::DeadlineExceeded`] are expected under load and should
    /// be retried or degraded by the caller.
    pub fn schedule(&self, req: ScheduleRequest) -> Result<ScheduleResponse, SvcError> {
        self.submit(req)?.wait()
    }

    /// Enqueues a schedule request without waiting for its result — the
    /// non-blocking half of [`Client::schedule`], for callers (the event
    /// loop) that multiplex many requests on one thread and poll the
    /// returned [`Ticket`] instead of parking on it.
    ///
    /// # Errors
    ///
    /// [`SvcError::ShuttingDown`], [`SvcError::Shed`], or a validation
    /// error — everything that can be known at submission time.
    pub fn submit(&self, req: ScheduleRequest) -> Result<Ticket, SvcError> {
        req.validate()?;
        let deadline = req.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let cell = Cell::new();
        {
            let mut q = fault::lock(&self.inner.queue);
            if q.shutdown {
                return Err(SvcError::ShuttingDown);
            }
            if q.jobs.len() >= self.inner.cfg.queue_capacity {
                bump(&self.inner.metrics.sheds);
                return Err(SvcError::Shed);
            }
            bump(&self.inner.metrics.requests);
            q.jobs.push_back(Job { req, deadline, cell: Arc::clone(&cell) });
            self.inner.queue_cv.notify_one();
        }
        Ok(Ticket { cell, deadline })
    }

    /// The raw artifact text of `key` from this node's cache, if present —
    /// answers a peer's `FETCH` during its read-through fill.
    pub fn fetch_artifact(&self, key: &CacheKey) -> Option<String> {
        let text = self.inner.cache.load_text(key)?;
        bump(&self.inner.metrics.fetches_served);
        Some(text)
    }

    /// Stores a replicated artifact (`PUT`, gateway hot-key replication).
    /// The text must parse as a schedule — a sanity check, not trust: like
    /// every artifact, it is fully re-verified on any later load.
    ///
    /// # Errors
    ///
    /// [`SvcError::BadRequest`] for unparseable text,
    /// [`SvcError::Internal`] when the store itself fails — including a
    /// skip for disk pressure: the whole point of a `PUT` is persistence,
    /// so "not stored" is an honest error here, unlike the schedule path
    /// where the response is served either way.
    pub fn put_artifact(&self, key: &CacheKey, text: &str) -> Result<(), SvcError> {
        schedule_from_text(text)
            .map_err(|e| SvcError::BadRequest(format!("artifact does not parse: {e}")))?;
        match self.inner.cache.store(key, text) {
            Ok(StoreOutcome::Stored) => {
                bump(&self.inner.metrics.replica_stores);
                Ok(())
            }
            Ok(StoreOutcome::SkippedNoSpace) => {
                Err(SvcError::Internal("artifact store skipped: volume out of space".into()))
            }
            Err(e) => Err(SvcError::Internal(format!("artifact store failed: {e}"))),
        }
    }

    /// The node's live cache key set — answers the anti-entropy `DIGEST`
    /// verb. Quarantined artifacts are absent by design, which is what
    /// makes a peer's good copy eligible to be pulled back in.
    ///
    /// # Errors
    ///
    /// [`SvcError::Internal`] when the cache directory cannot be read.
    pub fn digest(&self) -> Result<Vec<CacheKey>, SvcError> {
        let keys = self
            .inner
            .cache
            .keys()
            .map_err(|e| SvcError::Internal(format!("digest failed: {e}")))?;
        bump(&self.inner.metrics.digests_served);
        Ok(keys)
    }

    /// Runs one anti-entropy repair round right now (the `SYNC` verb);
    /// returns `(pulled, failed, peers_consulted)`.
    pub fn sync_now(&self) -> (u64, u64, usize) {
        self.inner.sync_round()
    }

    /// Renders the metrics registry as JSON.
    pub fn metrics_json(&self) -> String {
        self.inner.metrics.to_json()
    }
}

impl Inner {
    fn worker_loop(&self) {
        // Live-worker accounting that survives a panic unwind: the guard's
        // Drop runs whether the loop returns or unwinds.
        struct Live<'a>(&'a AtomicUsize);
        impl Drop for Live<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.live_workers.fetch_add(1, Ordering::SeqCst);
        let _live = Live(&self.live_workers);
        loop {
            // Wait until work is queued (or the queue drained at
            // shutdown) — without popping yet.
            {
                let mut q = fault::lock(&self.queue);
                loop {
                    if !q.jobs.is_empty() {
                        break;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = fault::cv_wait(&self.queue_cv, q);
                }
            }
            // Fault point outside any job's scope: a panic here kills this
            // worker, but the job is still queued and survives to whatever
            // worker (respawned or sibling) pops it next; a delay here
            // models a slow dequeue.
            self.faults.fire(points::QUEUE_DEQUEUE);
            let popped = fault::lock(&self.queue).jobs.pop_front();
            let Some(job) = popped else { continue };
            self.process_job(job);
        }
    }

    /// Runs one job start to finish: deadline check, single-flight
    /// attachment, the pipeline under `catch_unwind`, the degraded
    /// fallback, and fulfillment of every waiter. A panic anywhere in the
    /// pipeline becomes a structured response — the waiting client is
    /// always answered and the single-flight entry always removed.
    fn process_job(&self, job: Job) {
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            bump(&self.metrics.deadline_expired);
            job.cell.fulfill(Err(SvcError::DeadlineExceeded));
            return;
        }
        let fk = job.req.flight_key();
        {
            let mut inflight = fault::lock(&self.inflight);
            if let Some(waiters) = inflight.get_mut(&fk) {
                // An identical request is already being computed:
                // attach and let the leader's result serve this one.
                waiters.push(Arc::clone(&job.cell));
                bump(&self.metrics.coalesced);
                return;
            }
            inflight.insert(fk, Vec::new());
        }
        // AssertUnwindSafe: everything the closure shares is either atomic
        // or behind the poison-recovering lock helpers, so observing a
        // post-panic state is safe by construction.
        let result = match catch_unwind(AssertUnwindSafe(|| self.run_pipeline(&job.req))) {
            Ok(r) => r,
            Err(payload) => {
                bump(&self.metrics.worker_panics);
                Err(SvcError::Internal(fault::panic_message(payload.as_ref())))
            }
        };
        // Degraded-mode fallback: when the cache-aware pipeline failed (or
        // panicked), a correct cache-oblivious answer is still safe to
        // serve — degrade to the untiled schedule, never to an outage.
        let result = match result {
            Err(primary @ (SvcError::Pipeline(_) | SvcError::Internal(_))) => {
                match catch_unwind(AssertUnwindSafe(|| self.degraded_untiled(&job.req, fk))) {
                    Ok(Ok(resp)) => {
                        bump(&self.metrics.degraded_total);
                        Ok(resp)
                    }
                    // The fallback failed too; report the primary error.
                    Ok(Err(_)) | Err(_) => Err(primary),
                }
            }
            r => r,
        };
        if result.is_err() {
            bump(&self.metrics.errors);
        }
        let waiters = fault::lock(&self.inflight).remove(&fk).unwrap_or_default();
        for w in &waiters {
            w.fulfill(result.clone());
        }
        job.cell.fulfill(result);
    }

    /// The degraded fallback: the untiled baseline schedule (one launch
    /// per kernel in topological order), verified before serving. Runs
    /// only the minimal pipeline prefix it needs (build + analyze), skips
    /// calibration and tiling entirely, and never touches the cache — the
    /// artifact store is reserved for cache-aware schedules. The response
    /// is keyed by the flight key, since no content-addressed artifact
    /// exists for it.
    fn degraded_untiled(
        &self,
        req: &ScheduleRequest,
        fk: CacheKey,
    ) -> Result<ScheduleResponse, SvcError> {
        let t0 = Instant::now();
        let mut app = req.workload.build();
        let gpu = &self.cfg.gpu;
        // Fast-path analysis: the fallback only needs traces and block
        // dependencies for verification, never output values.
        let gt = kgraph::analyze_fast(&app.graph, &mut app.mem, gpu.cache.line_bytes)
            .map_err(|e| SvcError::Internal(format!("degraded fallback: analysis failed: {e}")))?;
        let schedule = Schedule::default_order(&app.graph);
        let params = TileParams::paper(gpu.cache.capacity_bytes, gpu.cache.line_bytes, 0.0);
        let report = verify_schedule(&schedule, &app.graph, &gt, &params);
        if !report.is_clean() {
            return Err(SvcError::Internal(format!(
                "degraded fallback: untiled schedule failed verification: {report}"
            )));
        }
        let text = schedule_to_text(&schedule);
        self.metrics.total_latency.record(t0.elapsed());
        Ok(ScheduleResponse {
            outcome: Outcome::DegradedUntiled,
            key: fk,
            launches: schedule.num_launches(),
            text,
        })
    }

    /// Memo lookup or analyze + calibrate.
    fn prepare(&self, req: &ScheduleRequest, fk: CacheKey) -> Result<Arc<Prepared>, SvcError> {
        if let Some(p) = fault::lock(&self.memo).get(&fk) {
            return Ok(Arc::clone(p));
        }
        self.faults
            .fire_io(points::FRAME_IO)
            .map_err(|e| SvcError::Pipeline(format!("frame I/O failed: {e}")))?;
        let mut app = req.workload.build();
        let gpu = self.cfg.gpu.clone();
        self.faults
            .fire_io(points::PIPELINE_ANALYZE)
            .map_err(|e| SvcError::Pipeline(format!("analysis failed: {e}")))?;
        // Fast-path analysis: scheduling consumes traces and dependencies
        // only, so kernels whose values no recorded kernel reads are never
        // functionally executed. `analyze_latency` times exactly this call
        // — the per-cache-miss analyzer cost surfaced in the STATS JSON.
        let t_analyze = Instant::now();
        let gt = kgraph::analyze_fast(&app.graph, &mut app.mem, gpu.cache.line_bytes)
            .map_err(|e| SvcError::Pipeline(format!("analysis failed: {e}")))?;
        self.metrics.analyze_latency.record(t_analyze.elapsed());
        self.faults
            .fire_io(points::PIPELINE_CALIBRATE)
            .map_err(|e| SvcError::Pipeline(format!("calibration failed: {e}")))?;
        let freq = FreqConfig::new(req.gpu_mhz, req.mem_mhz);
        let cal = calibrate(&app.graph, &gt, &gpu, freq, &CalibrationConfig::default());
        let kcfg = KtilerConfig {
            weight_threshold_ns: self.cfg.weight_threshold_ns,
            tile: TileParams::paper(gpu.cache.capacity_bytes, gpu.cache.line_bytes, 0.0),
        };
        let key = schedule_cache_key(&app.graph, &gt, &gpu.cache, &cal, &kcfg);
        bump(&self.metrics.analysis_runs);
        let prepared = Arc::new(Prepared { app, gt, cal, kcfg, key });
        let mut memo = fault::lock(&self.memo);
        if memo.len() >= self.cfg.memo_capacity {
            memo.clear();
        }
        memo.insert(fk, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// The full cached pipeline: prepare → probe cache → compute + store.
    fn run_pipeline(&self, req: &ScheduleRequest) -> Result<ScheduleResponse, SvcError> {
        let t_total = Instant::now();
        let p = self.prepare(req, req.flight_key())?;

        let t_load = Instant::now();
        let probe = match self.faults.fire_io(points::CACHE_LOAD) {
            // An injected load failure degrades to a recompute, exactly
            // like a real unreadable artifact.
            Err(e) => CacheProbe::Invalid(format!("injected load failure: {e}")),
            Ok(()) => self.cache.probe(&p.key, &p.app.graph, &p.gt, &p.kcfg.tile),
        };
        self.metrics.cache_load_latency.record(t_load.elapsed());
        let outcome = match probe {
            CacheProbe::Hit { text, schedule } => {
                bump(&self.metrics.cache_hits);
                self.metrics.total_latency.record(t_total.elapsed());
                return Ok(ScheduleResponse {
                    outcome: Outcome::Hit,
                    key: p.key,
                    launches: schedule.num_launches(),
                    text,
                });
            }
            CacheProbe::Absent => {
                bump(&self.metrics.cache_misses);
                Outcome::Miss
            }
            CacheProbe::Invalid(_reason) => {
                bump(&self.metrics.verify_failures);
                Outcome::Recompute
            }
        };

        // Peer read-through: before paying for a recompute, ask the peer
        // nodes whether one of them already holds this artifact. Strictly
        // an optimization — any peer failure falls through to the local
        // pipeline below.
        if let Some(resp) = self.peer_fill(&p, t_total) {
            return Ok(resp);
        }

        let t_tile = Instant::now();
        self.faults
            .fire_io(points::PIPELINE_SCHEDULE)
            .map_err(|e| SvcError::Pipeline(format!("tiling failed: {e}")))?;
        let out = ktiler_schedule(&p.app.graph, &p.gt, &p.cal, &p.kcfg)
            .map_err(|e| SvcError::Pipeline(format!("tiling failed: {e}")))?;
        out.schedule
            .validate(&p.app.graph, &p.gt.deps)
            .map_err(|e| SvcError::Pipeline(format!("emitted schedule invalid: {e}")))?;
        bump(&self.metrics.pipeline_runs);
        self.metrics.tile_latency.record(t_tile.elapsed());

        let text = schedule_to_text(&out.schedule);
        let stored =
            self.faults.fire_io(points::CACHE_STORE).and_then(|()| self.cache.store(&p.key, &text));
        if stored.is_err() {
            // The response is still good; only persistence was lost.
            bump(&self.metrics.store_failures);
        }
        self.metrics.total_latency.record(t_total.elapsed());
        Ok(ScheduleResponse { outcome, key: p.key, launches: out.schedule.num_launches(), text })
    }

    /// Tries to fill a local cache miss from a peer node's cache. The
    /// fetched text is untrusted: it is parsed and fully re-verified
    /// against **this** node's graph, trace and tiling parameters before
    /// being stored and served — a peer can save this node work, never
    /// hand it a wrong schedule. Returns `None` when no peer helped (no
    /// peers configured, injected fault, transport failure, key not held,
    /// or verification failure); the caller recomputes.
    fn peer_fill(&self, p: &Prepared, t_total: Instant) -> Option<ScheduleResponse> {
        if self.cfg.peers.is_empty() {
            return None;
        }
        if self.faults.fire_io(points::PEER_FETCH).is_err() {
            bump(&self.metrics.peer_fetch_failures);
            return None;
        }
        for peer in &self.cfg.peers {
            let text = match crate::server::fetch_from_peer(peer, &p.key, self.cfg.peer_timeout) {
                Ok(t) => t,
                Err(_) => {
                    bump(&self.metrics.peer_fetch_failures);
                    continue;
                }
            };
            let Ok(schedule) = schedule_from_text(&text) else {
                bump(&self.metrics.peer_fetch_failures);
                continue;
            };
            let report = verify_schedule(&schedule, &p.app.graph, &p.gt, &p.kcfg.tile);
            if !report.is_clean() {
                bump(&self.metrics.peer_fetch_failures);
                continue;
            }
            if self.cache.store(&p.key, &text).is_err() {
                // Still serve the response; only persistence was lost.
                bump(&self.metrics.store_failures);
            }
            bump(&self.metrics.peer_fills);
            self.metrics.total_latency.record(t_total.elapsed());
            return Some(ScheduleResponse {
                outcome: Outcome::PeerFill,
                key: p.key,
                launches: schedule.num_launches(),
                text,
            });
        }
        None
    }

    /// One anti-entropy repair round: ask each configured peer for its key
    /// digest, pull every key this node is missing, and store it after a
    /// parse sanity check (full verification — which needs the request's
    /// graph and trace — happens on every later load, exactly as for `PUT`
    /// artifacts). Returns `(pulled, failed, peers_consulted)`.
    ///
    /// Routing keys are not content keys, so a node cannot range-filter
    /// the digest to "its" ring segment; replica groups exchange whole key
    /// sets, which is exactly what lets a node restarted empty converge to
    /// warm without any client traffic. A key whose local artifact was
    /// quarantined is missing from the local digest and is therefore
    /// re-pulled automatically.
    fn sync_round(&self) -> (u64, u64, usize) {
        let mut pulled: u64 = 0;
        let mut failed: u64 = 0;
        let mut local: std::collections::HashSet<CacheKey> =
            self.cache.keys().unwrap_or_default().into_iter().collect();
        for peer in &self.cfg.peers {
            let keys = match crate::server::digest_from_peer(peer, self.cfg.peer_timeout) {
                Ok(keys) => keys,
                Err(_) => {
                    failed += 1;
                    bump(&self.metrics.sync_pull_failures);
                    continue;
                }
            };
            for key in keys {
                if local.contains(&key) {
                    continue;
                }
                let ok = crate::server::fetch_from_peer(peer, &key, self.cfg.peer_timeout)
                    .ok()
                    .filter(|text| schedule_from_text(text).is_ok())
                    .is_some_and(|text| {
                        matches!(self.cache.store(&key, &text), Ok(StoreOutcome::Stored))
                    });
                if ok {
                    local.insert(key);
                    pulled += 1;
                    bump(&self.metrics.sync_pulls);
                } else {
                    failed += 1;
                    bump(&self.metrics.sync_pull_failures);
                }
            }
        }
        bump(&self.metrics.sync_rounds);
        (pulled, failed, self.cfg.peers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_spec_parse_and_display_roundtrip() {
        let spec = WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 2 };
        let shown = spec.to_string();
        assert_eq!(shown, "optflow size=64 iters=3 levels=2");
        let tokens: Vec<&str> = shown.split_whitespace().collect();
        assert_eq!(WorkloadSpec::parse(&tokens).unwrap(), spec);
        // Defaults fill omitted fields.
        assert_eq!(
            WorkloadSpec::parse(&["optflow"]).unwrap(),
            WorkloadSpec::OptFlow { size: 512, iters: 30, levels: 3 }
        );
        assert!(WorkloadSpec::parse(&["mandelbrot"]).is_err());
        assert!(WorkloadSpec::parse(&["optflow", "size"]).is_err());
        assert!(WorkloadSpec::parse(&["optflow", "size=abc"]).is_err());
        assert!(WorkloadSpec::parse(&["optflow", "frames=2"]).is_err());
        assert!(WorkloadSpec::parse(&[]).is_err());
    }

    #[test]
    fn spec_validation_bounds() {
        assert!(WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 2 }.validate().is_ok());
        for bad in [
            WorkloadSpec::OptFlow { size: 8, iters: 3, levels: 2 },
            WorkloadSpec::OptFlow { size: 4096, iters: 3, levels: 2 },
            WorkloadSpec::OptFlow { size: 64, iters: 0, levels: 2 },
            WorkloadSpec::OptFlow { size: 64, iters: 501, levels: 2 },
            WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 0 },
            WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 7 },
            WorkloadSpec::OptFlow { size: 16, iters: 3, levels: 3 },
        ] {
            assert!(
                matches!(bad.validate(), Err(SvcError::BadRequest(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn flight_key_ignores_deadline_but_not_operating_point() {
        let spec = WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 2 };
        let a = ScheduleRequest::new(spec);
        let b = ScheduleRequest { deadline_ms: Some(5), ..a.clone() };
        assert_eq!(a.flight_key(), b.flight_key());
        let c = ScheduleRequest { mem_mhz: 1600.0, ..a.clone() };
        assert_ne!(a.flight_key(), c.flight_key());
    }

    #[test]
    fn request_validation_rejects_bad_frequencies() {
        let spec = WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 2 };
        for (g, m) in [(0.0, 5010.0), (-1.0, 5010.0), (1324.0, f64::NAN), (1324.0, 1e9)] {
            let req = ScheduleRequest { gpu_mhz: g, mem_mhz: m, ..ScheduleRequest::new(spec) };
            assert!(matches!(req.validate(), Err(SvcError::BadRequest(_))), "({g}, {m})");
        }
    }

    #[test]
    fn error_codes_roundtrip() {
        for e in [
            SvcError::Shed,
            SvcError::DeadlineExceeded,
            SvcError::ShuttingDown,
            SvcError::BadRequest("x".into()),
            SvcError::Pipeline("y".into()),
            SvcError::Internal("z".into()),
            SvcError::NotFound,
        ] {
            let back = SvcError::from_code(
                e.code(),
                match &e {
                    SvcError::BadRequest(m) | SvcError::Pipeline(m) | SvcError::Internal(m) => m,
                    _ => "",
                },
            );
            assert_eq!(back, e);
        }
        let vm = SvcError::VersionMismatch { got: 3, expected: 1 };
        assert_eq!(SvcError::from_code(vm.code(), "got=3 expected=1"), vm);
        assert_eq!(
            SvcError::from_code("VERSION", "garbled"),
            SvcError::VersionMismatch { got: 0, expected: 0 },
            "unparsable fields degrade to 0, the mismatch itself survives"
        );
    }

    #[test]
    fn outcome_tokens_roundtrip() {
        for o in [
            Outcome::Hit,
            Outcome::Miss,
            Outcome::Recompute,
            Outcome::DegradedUntiled,
            Outcome::PeerFill,
        ] {
            assert_eq!(Outcome::from_str_token(o.as_str()), Some(o));
        }
        assert_eq!(Outcome::from_str_token("NOPE"), None);
    }
}
