//! A long-running scheduling service over the KTILER pipeline.
//!
//! The pipeline (analyze → calibrate → tile, see the `ktiler` crate) is
//! deterministic and pure in its inputs, which makes its output — the
//! schedule — cacheable by content: two requests with the same kernel
//! graph, grid geometry, cache configuration and performance model get the
//! byte-identical `.sched` artifact. This crate wraps the pipeline in a
//! service that exploits exactly that:
//!
//! * [`key`] — the content-addressed [`CacheKey`] over the tiler's inputs;
//! * [`cache`] — the on-disk artifact store, re-verified on every load
//!   ([`ScheduleCache`]);
//! * [`service`] — the worker pool, bounded queue with shedding, per-request
//!   deadlines and single-flight deduplication ([`Service`] / [`Client`]);
//! * [`metrics`] — lock-free counters and latency histograms ([`Metrics`]);
//! * [`proto`] / [`server`] — a versioned, length-prefixed line protocol
//!   over TCP served by a single-threaded readiness event loop ([`serve`],
//!   [`NetClient`], [`FrontEnd`]), so one warmed cache can serve many
//!   processes — and many *nodes*: peers read-through-fill each other's
//!   misses (`FETCH`/`PUT`), and the `ktiler-gateway` crate shards the key
//!   space over a consistent-hash ring of such nodes;
//! * [`fault`] — a deterministic fault-injection layer ([`FaultInjector`],
//!   [`FaultPlan`]): named fault points compiled into the hot paths, armed
//!   by seeded plans, used by the chaos suite to prove the service
//!   contains panics, respawns crashed workers and degrades to verified
//!   untiled schedules instead of failing requests.
//!
//! Everything is `std`-only, like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fault;
pub mod key;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod service;

pub use cache::{CacheProbe, ScheduleCache, StoreOutcome};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
pub use key::{schedule_cache_key, CacheKey, KeyHasher};
pub use metrics::Metrics;
pub use server::{
    digest_from_peer, fetch_from_peer, serve, serve_front, serve_with, Dispatch, FrontEnd,
    NetClient, ResponseSink, ResponseTicket, RetryPolicy, Server, ServerTuning,
};
pub use service::{
    Client, Outcome, ScheduleRequest, ScheduleResponse, Service, ServiceConfig, SvcError, Ticket,
    TicketSink, WorkloadSpec,
};
