//! The on-disk, content-addressed, crash-consistent schedule cache.
//!
//! Artifacts are the existing `.sched` text format (see `ktiler::io`),
//! stored as `<dir>/<key>.sched` where `<key>` is the 32-hex-digit
//! [`CacheKey`] of the request's content hash. The format and the naming
//! are the whole contract: a cache directory can be inspected with a
//! pager, primed by `ktiler_tool schedule --out`, or shipped to another
//! machine.
//!
//! **Trust model.** An artifact on disk is untrusted input — it may be
//! truncated, hand-edited, produced by an older binary whose tiler had a
//! bug, or simply corrupted. Every load therefore re-runs the full
//! [`ktiler::verify_schedule`] pass against the *current* request's graph,
//! trace and tiling parameters; anything short of a clean report degrades
//! to a cache miss (and a recompute that replaces the bad artifact),
//! never to a bad schedule.
//!
//! **Quarantine.** A bad artifact is evidence — of bit rot, of a tiler
//! bug, of operator error — so instead of silently overwriting it, the
//! probe renames it to `<key>.sched.bad` for inspection. At most one
//! quarantined file is kept per key: a second corruption of the same key
//! replaces the first, so a flapping artifact cannot fill the disk. A
//! quarantine rename that itself fails is counted
//! (`quarantine_failures`) and reported in the probe's reason — the
//! recompute that follows replaces the artifact either way.
//!
//! **Durability contract** (DESIGN.md §16). A store is *committed* only
//! once three steps have all succeeded, in order: the text is written to
//! a same-directory temporary file, the temporary file is fsynced, and
//! the rename over the final path is made durable by fsyncing the
//! directory. A crash — including SIGKILL — at any point leaves either
//! the old committed artifact (or nothing) or the new one, never a torn
//! file under the live name. Temporary files orphaned by a crash are
//! swept on [`ScheduleCache::open`]; they are uncommitted by definition.
//!
//! **Disk pressure.** Running out of space is an operational state, not
//! an error: a store that hits ENOSPC cleans up its temporary file,
//! counts `store_skipped`, and reports [`StoreOutcome::SkippedNoSpace`] —
//! the computed schedule is still served, only the persist is bypassed.
//! An optional size budget bounds the directory: after each committed
//! store (and after an ENOSPC, to make room) a sweeper evicts artifacts
//! least-recently-modified-first — quarantined `.bad` files before live
//! ones — until the directory fits the budget again.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use kgraph::{AppGraph, GraphTrace};
use ktiler::{schedule_from_text, verify_schedule, Schedule, TileParams};

use crate::fault::{points, FaultInjector};
use crate::key::CacheKey;
use crate::metrics::{bump, Metrics};

/// Outcome of probing the cache for a key.
#[derive(Debug)]
pub enum CacheProbe {
    /// A verified artifact was found; the stored text and parsed schedule.
    Hit {
        /// The artifact's exact bytes as stored on disk.
        text: String,
        /// The parsed schedule.
        schedule: Schedule,
    },
    /// No artifact exists for this key.
    Absent,
    /// An artifact exists but failed parsing or verification; the reason
    /// is reported so the caller can count and log it before recomputing.
    Invalid(String),
}

/// Outcome of a successful [`ScheduleCache::store`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The artifact was durably committed under its final name.
    Stored,
    /// The volume is out of space; the store was skipped (cache-bypass).
    /// The caller serves the computed schedule as usual — only the
    /// persist is lost, and `store_skipped` counts it.
    SkippedNoSpace,
}

/// A directory of content-addressed `.sched` artifacts.
#[derive(Debug, Clone)]
pub struct ScheduleCache {
    dir: PathBuf,
    budget_bytes: Option<u64>,
    faults: Arc<FaultInjector>,
    metrics: Arc<Metrics>,
    tmp_recovered: u64,
}

/// Whether an I/O error means the volume is out of space.
fn is_no_space(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::StorageFull || e.raw_os_error() == Some(28)
}

impl ScheduleCache {
    /// Opens (creating if needed) a cache rooted at `dir`, and removes
    /// any temporary files orphaned by a crashed store — a `.tmp.*` file
    /// is uncommitted by definition (commit is the rename), so deleting
    /// it can never lose a committed artifact. The number removed is
    /// reported by [`ScheduleCache::tmp_recovered`].
    ///
    /// # Errors
    ///
    /// Any error from creating or scanning the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut recovered = 0;
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.contains(".sched.tmp.") && std::fs::remove_file(&path).is_ok() {
                recovered += 1;
            }
        }
        Ok(ScheduleCache {
            dir,
            budget_bytes: None,
            faults: FaultInjector::inert(),
            metrics: Arc::new(Metrics::default()),
            tmp_recovered: recovered,
        })
    }

    /// Attaches the service's fault injector (builder-style); without
    /// one the cache's fault points are inert.
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches the service's metrics registry (builder-style); without
    /// one the cache counts against a private, unobserved registry.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the size budget in bytes (builder-style). `None` disables
    /// the sweeper; `Some(n)` keeps the directory's `.sched` +
    /// `.sched.bad` footprint at or under `n` bytes by evicting
    /// least-recently-modified artifacts after each committed store.
    #[must_use]
    pub fn with_budget(mut self, budget_bytes: Option<u64>) -> Self {
        self.budget_bytes = budget_bytes;
        self
    }

    /// Torn temporary files removed by [`ScheduleCache::open`].
    pub fn tmp_recovered(&self) -> u64 {
        self.tmp_recovered
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path of a key (whether or not it exists).
    pub fn path_of(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.sched"))
    }

    /// Where a bad artifact of `key` is quarantined for inspection.
    pub fn quarantine_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.sched.bad"))
    }

    /// Moves a bad artifact aside to [`Self::quarantine_path`], replacing
    /// any earlier quarantined file of the same key (cap: one per key).
    /// A failed rename leaves the bad artifact under its live name (the
    /// recompute's store will replace it); the failure is counted and
    /// returned so the probe can report it.
    fn quarantine(&self, key: &CacheKey) -> Result<(), io::Error> {
        match std::fs::rename(self.path_of(key), self.quarantine_path(key)) {
            Ok(()) => Ok(()),
            Err(e) => {
                bump(&self.metrics.quarantine_failures);
                Err(e)
            }
        }
    }

    /// Quarantines and renders the probe's `Invalid` reason, appending
    /// the quarantine failure (if any) so it is never silently dropped.
    fn invalidate(&self, key: &CacheKey, reason: String) -> CacheProbe {
        match self.quarantine(key) {
            Ok(()) => CacheProbe::Invalid(reason),
            Err(e) => CacheProbe::Invalid(format!("{reason}; quarantine failed: {e}")),
        }
    }

    /// Probes the cache: loads, parses and verifies the artifact of `key`
    /// against the request's graph, trace and tiling parameters. A bad
    /// artifact is quarantined (renamed to `<key>.sched.bad`) before the
    /// probe reports it invalid.
    ///
    /// I/O errors other than "not found" are treated as [`CacheProbe::Invalid`]
    /// — a cache must degrade to recomputation, not fail the request.
    pub fn probe(
        &self,
        key: &CacheKey,
        g: &AppGraph,
        gt: &GraphTrace,
        params: &TileParams,
    ) -> CacheProbe {
        let path = self.path_of(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheProbe::Absent,
            Err(e) => {
                return self.invalidate(key, format!("read {}: {e}", path.display()));
            }
        };
        let schedule = match schedule_from_text(&text) {
            Ok(s) => s,
            Err(e) => {
                return self.invalidate(key, format!("parse {}: {e}", path.display()));
            }
        };
        let report = verify_schedule(&schedule, g, gt, params);
        if !report.is_clean() {
            return self.invalidate(key, format!("verify {}: {report}", path.display()));
        }
        CacheProbe::Hit { text, schedule }
    }

    /// Loads the raw artifact text of `key`, **without** verification —
    /// this is the `FETCH` path serving a peer's read-through fill. The
    /// fetching node re-verifies the text against its own request context
    /// before serving or storing it, so verification here would only
    /// duplicate work this node has no graph/trace context for anyway.
    pub fn load_text(&self, key: &CacheKey) -> Option<String> {
        std::fs::read_to_string(self.path_of(key)).ok()
    }

    /// Persists an artifact crash-consistently:
    ///
    /// 1. the text is written to a temporary file in the same directory;
    /// 2. the temporary file is fsynced (fault point `cache.fsync`) —
    ///    nothing unsynced is ever renamed into the live namespace;
    /// 3. it is renamed over the final path, so a concurrent reader sees
    ///    either the old artifact or the new one, never a torn write;
    /// 4. the directory is fsynced, making the rename itself durable.
    ///
    /// ENOSPC anywhere along the way (fault point `cache.enospc`)
    /// degrades to cache-bypass: the temporary file is removed, the skip
    /// is counted, and the call *succeeds* with
    /// [`StoreOutcome::SkippedNoSpace`] — running out of disk must never
    /// fail a request that already holds its computed schedule. A
    /// committed store (and an ENOSPC, to make room) triggers the size
    /// budget sweeper, if one is configured.
    ///
    /// # Errors
    ///
    /// Any non-ENOSPC error from writing, syncing or renaming the
    /// temporary file. The temporary file is removed on every error path.
    pub fn store(&self, key: &CacheKey, text: &str) -> io::Result<StoreOutcome> {
        let final_path = self.path_of(key);
        let tmp_path = self.dir.join(format!("{key}.sched.tmp.{}", std::process::id()));
        match self.store_inner(&tmp_path, &final_path, text) {
            Ok(()) => {
                self.sweep_if_over_budget();
                Ok(StoreOutcome::Stored)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp_path);
                if is_no_space(&e) {
                    bump(&self.metrics.store_skipped);
                    // Make room so a later store can succeed again.
                    self.sweep_if_over_budget();
                    Ok(StoreOutcome::SkippedNoSpace)
                } else {
                    Err(e)
                }
            }
        }
    }

    fn store_inner(&self, tmp_path: &Path, final_path: &Path, text: &str) -> io::Result<()> {
        self.faults
            .fire_io(points::CACHE_ENOSPC)
            .map_err(|e| io::Error::new(io::ErrorKind::StorageFull, e))?;
        let mut f = std::fs::File::create(tmp_path)?;
        io::Write::write_all(&mut f, text.as_bytes())?;
        // The fsync fault fires while the artifact is still only a tmp
        // file — the exact window a SIGKILL must be able to hit without
        // corrupting the committed namespace.
        self.faults.fire_io(points::CACHE_FSYNC)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(tmp_path, final_path)?;
        // Make the rename durable. The artifact is already valid and
        // readable; a failure here only means the *directory entry* may
        // not survive a power cut, so it is reported as a store failure
        // (response still served) without removing the committed file.
        std::fs::File::open(&self.dir)?.sync_all()
    }

    /// Runs the sweeper when a budget is configured; sweep errors are
    /// deliberately swallowed (eviction is advisory — the next store
    /// retries it), but evictions are counted.
    fn sweep_if_over_budget(&self) {
        if self.budget_bytes.is_some() {
            let _ = self.sweep();
        }
    }

    /// Evicts artifacts — quarantined `.sched.bad` files first, then
    /// live `.sched` files, each least-recently-modified first — until
    /// the directory's artifact footprint fits the configured budget.
    /// Returns the number of files evicted. A no-op without a budget.
    ///
    /// # Errors
    ///
    /// The injected `cache.sweep` fault, or any error scanning the
    /// directory. Races with concurrent stores/loads are benign: a file
    /// that vanishes mid-sweep is simply skipped.
    pub fn sweep(&self) -> io::Result<u64> {
        let Some(budget) = self.budget_bytes else {
            return Ok(0);
        };
        self.faults.fire_io(points::CACHE_SWEEP)?;
        // (is_live, mtime, size, path): sorting puts quarantined files
        // (is_live = false) ahead of live ones, oldest first within each.
        let mut entries: Vec<(bool, std::time::SystemTime, u64, PathBuf)> = Vec::new();
        let mut total: u64 = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let is_live = name.ends_with(".sched");
            if !is_live && !name.ends_with(".sched.bad") {
                continue;
            }
            let Ok(md) = entry.metadata() else { continue };
            let mtime = md.modified().unwrap_or(std::time::UNIX_EPOCH);
            total += md.len();
            entries.push((is_live, mtime, md.len(), path));
        }
        if total <= budget {
            return Ok(0);
        }
        entries.sort_by_key(|e| (e.0, e.1));
        let mut evicted = 0;
        for (_, _, size, path) in entries {
            if total <= budget {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(size);
                evicted += 1;
                bump(&self.metrics.cache_evictions);
            }
        }
        Ok(evicted)
    }

    /// The keys of every live `.sched` artifact, sorted — the node's
    /// side of the anti-entropy `DIGEST` exchange. Quarantined and
    /// temporary files are excluded: a key whose artifact was
    /// quarantined is *missing* from this digest, which is exactly what
    /// makes a peer's copy eligible to be pulled back in.
    ///
    /// # Errors
    ///
    /// Any error from reading the directory.
    pub fn keys(&self) -> io::Result<Vec<CacheKey>> {
        let mut keys = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(stem) = name.strip_suffix(".sched") {
                if let Ok(key) = stem.parse::<CacheKey>() {
                    keys.push(key);
                }
            }
        }
        keys.sort_unstable_by_key(|k| (k.hi, k.lo));
        Ok(keys)
    }

    /// Number of `.sched` artifacts currently in the cache directory.
    ///
    /// # Errors
    ///
    /// Any error from reading the directory.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "sched") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the cache directory holds no artifacts.
    ///
    /// # Errors
    ///
    /// Any error from reading the directory.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultSpec};
    use crate::metrics::Metrics;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ktiler-cache-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> CacheKey {
        CacheKey { hi: n, lo: !n }
    }

    fn armed(point: &str, spec: FaultSpec) -> Arc<FaultInjector> {
        let inj = FaultInjector::inert();
        inj.load_plan(&FaultPlan::new(1).arm(point, spec));
        inj
    }

    #[test]
    fn store_commits_and_leaves_no_tmp_file() {
        let dir = temp_dir("commit");
        let cache = ScheduleCache::open(&dir).expect("open");
        let k = key(1);
        assert_eq!(cache.store(&k, "artifact body\n").expect("store"), StoreOutcome::Stored);
        assert_eq!(cache.load_text(&k).as_deref(), Some("artifact body\n"));
        assert_eq!(cache.keys().expect("keys"), vec![k]);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must not survive a commit: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_fault_fails_the_store_without_touching_the_live_name() {
        let dir = temp_dir("fsync");
        let cache = ScheduleCache::open(&dir)
            .expect("open")
            .with_faults(armed(points::CACHE_FSYNC, FaultSpec::io("injected fsync failure")));
        let k = key(2);
        assert!(cache.store(&k, "old\n").is_err());
        assert!(!cache.path_of(&k).exists(), "a failed store must not commit");
        assert!(
            std::fs::read_dir(&dir).expect("read dir").next().is_none(),
            "the error path must remove its tmp file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_degrades_to_cache_bypass_and_counts_the_skip() {
        let dir = temp_dir("enospc");
        let metrics = Arc::new(Metrics::default());
        let cache = ScheduleCache::open(&dir)
            .expect("open")
            .with_faults(armed(points::CACHE_ENOSPC, FaultSpec::io("disk full")))
            .with_metrics(Arc::clone(&metrics));
        let k = key(3);
        assert_eq!(cache.store(&k, "body\n").expect("bypass"), StoreOutcome::SkippedNoSpace);
        assert!(!cache.path_of(&k).exists());
        assert_eq!(Metrics::get(&metrics.store_skipped), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tmp_files_are_recovered_on_open() {
        let dir = temp_dir("torn");
        {
            let cache = ScheduleCache::open(&dir).expect("open");
            cache.store(&key(4), "committed\n").expect("store");
        }
        // A crash between create and rename leaves exactly this.
        std::fs::write(dir.join(format!("{}.sched.tmp.999", key(5))), "torn half-wri")
            .expect("tmp");
        let cache = ScheduleCache::open(&dir).expect("reopen");
        assert_eq!(cache.tmp_recovered(), 1);
        assert_eq!(cache.keys().expect("keys"), vec![key(4)], "committed artifact must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweeper_evicts_quarantined_files_first_then_oldest_live() {
        let dir = temp_dir("sweep");
        let metrics = Arc::new(Metrics::default());
        let cache = ScheduleCache::open(&dir)
            .expect("open")
            .with_metrics(Arc::clone(&metrics))
            .with_budget(None);
        let body = "x".repeat(100);
        for n in 10..15 {
            cache.store(&key(n), &body).expect("store");
            // mtime order must match store order even on coarse clocks.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        std::fs::write(cache.quarantine_path(&key(99)), &body).expect("bad file");
        // 6 files x 100 bytes; a 350-byte budget must evict the .bad file
        // first and then the two oldest live artifacts.
        let cache = cache.with_budget(Some(350));
        assert_eq!(cache.sweep().expect("sweep"), 3);
        assert!(!cache.quarantine_path(&key(99)).exists(), "quarantined file evicts first");
        assert_eq!(
            cache.keys().expect("keys"),
            vec![key(12), key(13), key(14)],
            "oldest live evict next"
        );
        assert_eq!(Metrics::get(&metrics.cache_evictions), 3);
        // Under budget: the sweeper is a no-op.
        assert_eq!(cache.sweep().expect("sweep"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_fault_is_contained_to_the_sweeper() {
        let dir = temp_dir("sweepfault");
        let cache = ScheduleCache::open(&dir)
            .expect("open")
            .with_faults(armed(points::CACHE_SWEEP, FaultSpec::io("injected sweep failure")))
            .with_budget(Some(1));
        // The store still commits; the failed sweep is advisory.
        assert_eq!(cache.store(&key(6), "body\n").expect("store"), StoreOutcome::Stored);
        assert!(cache.path_of(&key(6)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
