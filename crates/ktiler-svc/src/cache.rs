//! The on-disk, content-addressed schedule cache.
//!
//! Artifacts are the existing `.sched` text format (see `ktiler::io`),
//! stored as `<dir>/<key>.sched` where `<key>` is the 32-hex-digit
//! [`CacheKey`] of the request's content hash. The format and the naming
//! are the whole contract: a cache directory can be inspected with a
//! pager, primed by `ktiler_tool schedule --out`, or shipped to another
//! machine.
//!
//! **Trust model.** An artifact on disk is untrusted input — it may be
//! truncated, hand-edited, produced by an older binary whose tiler had a
//! bug, or simply corrupted. Every load therefore re-runs the full
//! [`ktiler::verify_schedule`] pass against the *current* request's graph,
//! trace and tiling parameters; anything short of a clean report degrades
//! to a cache miss (and a recompute that replaces the bad artifact),
//! never to a bad schedule.
//!
//! **Quarantine.** A bad artifact is evidence — of bit rot, of a tiler
//! bug, of operator error — so instead of silently overwriting it, the
//! probe renames it to `<key>.sched.bad` for inspection. At most one
//! quarantined file is kept per key: a second corruption of the same key
//! replaces the first, so a flapping artifact cannot fill the disk.

use std::io;
use std::path::{Path, PathBuf};

use kgraph::{AppGraph, GraphTrace};
use ktiler::{schedule_from_text, verify_schedule, Schedule, TileParams};

use crate::key::CacheKey;

/// Outcome of probing the cache for a key.
#[derive(Debug)]
pub enum CacheProbe {
    /// A verified artifact was found; the stored text and parsed schedule.
    Hit {
        /// The artifact's exact bytes as stored on disk.
        text: String,
        /// The parsed schedule.
        schedule: Schedule,
    },
    /// No artifact exists for this key.
    Absent,
    /// An artifact exists but failed parsing or verification; the reason
    /// is reported so the caller can count and log it before recomputing.
    Invalid(String),
}

/// A directory of content-addressed `.sched` artifacts.
#[derive(Debug, Clone)]
pub struct ScheduleCache {
    dir: PathBuf,
}

impl ScheduleCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Any error from creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ScheduleCache { dir })
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path of a key (whether or not it exists).
    pub fn path_of(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.sched"))
    }

    /// Where a bad artifact of `key` is quarantined for inspection.
    pub fn quarantine_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.sched.bad"))
    }

    /// Moves a bad artifact aside to [`Self::quarantine_path`], replacing
    /// any earlier quarantined file of the same key (cap: one per key).
    /// Failure to quarantine is ignored — the recompute that follows will
    /// replace the artifact either way.
    fn quarantine(&self, key: &CacheKey) {
        let _ = std::fs::rename(self.path_of(key), self.quarantine_path(key));
    }

    /// Probes the cache: loads, parses and verifies the artifact of `key`
    /// against the request's graph, trace and tiling parameters. A bad
    /// artifact is quarantined (renamed to `<key>.sched.bad`) before the
    /// probe reports it invalid.
    ///
    /// I/O errors other than "not found" are treated as [`CacheProbe::Invalid`]
    /// — a cache must degrade to recomputation, not fail the request.
    pub fn probe(
        &self,
        key: &CacheKey,
        g: &AppGraph,
        gt: &GraphTrace,
        params: &TileParams,
    ) -> CacheProbe {
        let path = self.path_of(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheProbe::Absent,
            Err(e) => {
                self.quarantine(key);
                return CacheProbe::Invalid(format!("read {}: {e}", path.display()));
            }
        };
        let schedule = match schedule_from_text(&text) {
            Ok(s) => s,
            Err(e) => {
                self.quarantine(key);
                return CacheProbe::Invalid(format!("parse {}: {e}", path.display()));
            }
        };
        let report = verify_schedule(&schedule, g, gt, params);
        if !report.is_clean() {
            self.quarantine(key);
            return CacheProbe::Invalid(format!("verify {}: {report}", path.display()));
        }
        CacheProbe::Hit { text, schedule }
    }

    /// Loads the raw artifact text of `key`, **without** verification —
    /// this is the `FETCH` path serving a peer's read-through fill. The
    /// fetching node re-verifies the text against its own request context
    /// before serving or storing it, so verification here would only
    /// duplicate work this node has no graph/trace context for anyway.
    pub fn load_text(&self, key: &CacheKey) -> Option<String> {
        std::fs::read_to_string(self.path_of(key)).ok()
    }

    /// Persists an artifact atomically: the text is written to a temporary
    /// file in the same directory and renamed over the final path, so a
    /// concurrent reader sees either the old artifact or the new one,
    /// never a torn write.
    ///
    /// # Errors
    ///
    /// Any error from writing or renaming the temporary file.
    pub fn store(&self, key: &CacheKey, text: &str) -> io::Result<()> {
        let final_path = self.path_of(key);
        let tmp_path = self.dir.join(format!("{key}.sched.tmp.{}", std::process::id()));
        std::fs::write(&tmp_path, text)?;
        match std::fs::rename(&tmp_path, &final_path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp_path);
                Err(e)
            }
        }
    }

    /// Number of `.sched` artifacts currently in the cache directory.
    ///
    /// # Errors
    ///
    /// Any error from reading the directory.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "sched") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the cache directory holds no artifacts.
    ///
    /// # Errors
    ///
    /// Any error from reading the directory.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}
