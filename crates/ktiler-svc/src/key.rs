//! Content-addressed cache keys for schedules.
//!
//! A schedule is a pure function of the tiler's inputs: the application
//! graph, the launch geometry of its kernels, the cache configuration the
//! footprint constraint is checked against, and the calibrated performance
//! model (tables, default times, edge weights, predecessor orders). Two
//! requests with identical inputs therefore share one schedule artifact —
//! the key below hashes exactly those inputs, nothing else (no timestamps,
//! no request metadata), so it is stable across processes and machines.
//!
//! The hash is two independent FNV-1a lanes (128 bits total). FNV is not
//! cryptographic; the cache is a performance artifact, not a trust
//! boundary, and every artifact is re-verified on load anyway (see
//! [`crate::cache`]).

use std::fmt;
use std::str::FromStr;

use gpu_sim::CacheConfig;
use kgraph::{AppGraph, GraphTrace, NodeId, NodeOp};
use ktiler::{CacheConstraint, Calibration, KtilerConfig};

/// A 128-bit content hash identifying one schedule artifact.
///
/// Displayed (and parsed) as 32 lowercase hex digits; this is also the
/// artifact's file stem in the on-disk cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// High 64 bits (first FNV lane).
    pub hi: u64,
    /// Low 64 bits (second FNV lane).
    pub lo: u64,
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Error parsing a [`CacheKey`] from hex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKeyError;

impl fmt::Display for ParseKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache key must be 32 hex digits")
    }
}

impl std::error::Error for ParseKeyError {}

impl FromStr for CacheKey {
    type Err = ParseKeyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseKeyError);
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|_| ParseKeyError)?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|_| ParseKeyError)?;
        Ok(CacheKey { hi, lo })
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis of the second lane — an arbitrary odd constant so the two
/// lanes decorrelate from the first byte on.
const LANE2_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15;

/// Incremental two-lane FNV-1a hasher with length-prefixed writes.
///
/// Every variable-length field is written with its length first, so
/// `("ab", "c")` and `("a", "bc")` hash differently; fixed-width integers
/// are written little-endian; floats are written as their IEEE bit
/// patterns (the pipeline is bit-deterministic, so this is exact).
#[derive(Debug, Clone)]
pub struct KeyHasher {
    a: u64,
    b: u64,
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        KeyHasher { a: FNV_OFFSET, b: FNV_OFFSET ^ LANE2_OFFSET }
    }

    /// Feeds raw bytes (no length prefix).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte ^ 0xa5)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Feeds a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Feeds a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Feeds an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Finishes the hash.
    pub fn finish(&self) -> CacheKey {
        CacheKey { hi: self.a, lo: self.b }
    }
}

/// Computes the content-addressed key of the schedule the tiler would emit
/// for these inputs.
///
/// The key covers, in order:
///
/// 1. a format tag (bump it if the meaning of any field changes);
/// 2. the **kernel graph**: per node its label, operation kind, tileable
///    flag and transfer payload/buffer sizes; per edge its endpoints and
///    the carrying buffer's identity and length;
/// 3. the **grid geometry**: each kernel's grid and block extents, plus
///    the per-node block counts the analysis actually traced;
/// 4. the **cache configuration**: capacity, associativity, line size —
///    and the tiling parameters derived from it (constraint policy, IG
///    cost, merge threshold), since they steer Algorithms 1–2;
/// 5. the **performance-model fingerprint**: every sampled perf-table
///    point, the default times, the edge weights and the predecessor
///    orders of the calibration.
///
/// Anything *not* listed (frame contents, device memory state, wall-clock)
/// is deliberately excluded: it cannot change the emitted schedule.
pub fn schedule_cache_key(
    g: &AppGraph,
    gt: &GraphTrace,
    cache: &CacheConfig,
    cal: &Calibration,
    kcfg: &KtilerConfig,
) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_str("ktiler-svc schedule-key v1");

    // 2. Kernel graph.
    h.write_u64(g.num_nodes() as u64);
    for id in g.node_ids() {
        let node = g.node(id);
        h.write_str(&node.label);
        match &node.op {
            NodeOp::Kernel(_) => h.write_u32(0),
            NodeOp::HostToDevice { buf, data } => {
                h.write_u32(1);
                h.write_u32(buf.id.0);
                h.write_u64(buf.len);
                h.write_u64(data.len() as u64);
            }
            NodeOp::DeviceToHost { buf } => {
                h.write_u32(2);
                h.write_u32(buf.id.0);
                h.write_u64(buf.len);
            }
        }
        h.write_u32(u32::from(node.tileable()));
    }
    h.write_u64(g.num_edges() as u64);
    for eid in g.edge_ids() {
        let e = g.edge(eid);
        h.write_u32(e.src.0);
        h.write_u32(e.dst.0);
        h.write_u32(e.buf.id.0);
        h.write_u64(e.buf.len);
    }

    // 3. Grid geometry.
    for id in g.node_ids() {
        let node = g.node(id);
        match node.dims() {
            Some(d) => {
                for v in [d.grid.x, d.grid.y, d.grid.z, d.block.x, d.block.y, d.block.z] {
                    h.write_u32(v);
                }
            }
            None => h.write_u32(0),
        }
    }
    h.write_u64(gt.nodes.len() as u64);
    for nt in &gt.nodes {
        h.write_u32(nt.num_blocks());
    }

    // 4. Cache configuration and tiling parameters.
    h.write_u64(cache.capacity_bytes);
    h.write_u32(cache.ways);
    h.write_u64(cache.line_bytes);
    h.write_f64(kcfg.weight_threshold_ns);
    h.write_u64(kcfg.tile.cache_bytes);
    h.write_u64(kcfg.tile.line_bytes);
    h.write_f64(kcfg.tile.ig_cost_ns);
    match kcfg.tile.constraint {
        CacheConstraint::Footprint => h.write_u32(0),
        CacheConstraint::SimulatedHitRate { min_reuse_hit, ways } => {
            h.write_u32(1);
            h.write_f64(min_reuse_hit);
            h.write_u32(ways);
        }
    }

    // 5. Performance-model fingerprint.
    h.write_u64(cal.tables.len() as u64);
    for table in &cal.tables {
        let combos: Vec<_> = table.samples().collect();
        h.write_u64(combos.len() as u64);
        for (mask, points) in combos {
            h.write_u32(mask);
            h.write_u64(points.len() as u64);
            for &(grid, time_ns) in points {
                h.write_u32(grid);
                h.write_f64(time_ns);
            }
        }
    }
    h.write_u64(cal.default_times.len() as u64);
    for &t in &cal.default_times {
        h.write_f64(t);
    }
    h.write_u64(cal.edge_weights.len() as u64);
    for &w in &cal.edge_weights {
        h.write_f64(w);
    }
    h.write_u64(cal.preds.len() as u64);
    for preds in &cal.preds {
        h.write_u64(preds.len() as u64);
        for &NodeId(p) in preds {
            h.write_u32(p);
        }
    }

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let k = CacheKey { hi: 0x0123_4567_89ab_cdef, lo: 0xfedc_ba98_7654_3210 };
        let s = k.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(s.parse::<CacheKey>().unwrap(), k);
        assert!("xyz".parse::<CacheKey>().is_err());
        assert!("0123456789abcdef0123456789abcde".parse::<CacheKey>().is_err());
        assert!("g123456789abcdef0123456789abcdef".parse::<CacheKey>().is_err());
    }

    #[test]
    fn length_prefixing_separates_field_boundaries() {
        let mut h1 = KeyHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = KeyHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn lanes_are_independent() {
        let mut h = KeyHasher::new();
        h.write_str("some input");
        let k = h.finish();
        assert_ne!(k.hi, k.lo);
    }
}
