//! The TCP front-end: accepts connections, decodes framed requests and
//! drives the in-process [`Service`] — the network path and the in-process
//! [`crate::Client`] path share the identical queue, single-flight table
//! and cache.
//!
//! The accept loop and each connection handler poll a shared stop flag
//! (non-blocking accept, short read timeouts) so a `SHUTDOWN` request —
//! or [`Server::request_stop`] — winds the whole front-end down without
//! help from the OS: no signals, no socket shootdown.
//!
//! **Misbehaving peers.** A connection handler distinguishes an *idle*
//! client (no bytes of a frame received — allowed to sit quietly forever)
//! from a *stalled* one (a frame started but not finished): a stalled
//! peer holding half a frame is cut off after
//! [`ServerTuning::stall_timeout`], and writes are bounded by
//! [`ServerTuning::write_timeout`], so a client that stops reading cannot
//! pin a handler thread. Finished handler threads are reaped on every
//! accept, so a long-lived server's handler list stays proportional to
//! the number of *live* connections, not to the total ever accepted.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_sim::SplitMix64;

use crate::fault;
use crate::proto::{read_frame, read_frame_polled, write_frame, Request, Response};
use crate::service::{Service, SvcError};

/// How long the accept loop sleeps between polls of an idle listener.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Socket-level knobs of the TCP front-end. [`ServerTuning::default`] is
/// right for production; tests shrink the timeouts to fail fast.
#[derive(Debug, Clone, Copy)]
pub struct ServerTuning {
    /// Read timeout of a connection socket; bounds how stale the stop
    /// flag can be when a client goes quiet, and sets the granularity of
    /// the stall check.
    pub read_poll: Duration,
    /// Write timeout of a connection socket; a client that stops reading
    /// is dropped instead of pinning the handler thread.
    pub write_timeout: Duration,
    /// How long a connection may sit mid-frame (some bytes of a frame
    /// received, the rest missing) before it is dropped as stalled. Idle
    /// connections — no frame in progress — are never timed out.
    pub stall_timeout: Duration,
}

impl Default for ServerTuning {
    fn default() -> Self {
        ServerTuning {
            read_poll: Duration::from_millis(200),
            write_timeout: Duration::from_secs(10),
            stall_timeout: Duration::from_secs(10),
        }
    }
}

/// A running TCP front-end over a [`Service`].
pub struct Server {
    local_addr: SocketAddr,
    svc: Arc<Service>,
    stop: Arc<AtomicBool>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Starts serving `svc` on `addr` with default [`ServerTuning`]
/// (e.g. `127.0.0.1:0` for an ephemeral port; the bound address is
/// [`Server::local_addr`]).
///
/// # Errors
///
/// Any error from binding the listener.
pub fn serve<A: ToSocketAddrs>(addr: A, svc: Arc<Service>) -> io::Result<Server> {
    serve_with(addr, svc, ServerTuning::default())
}

/// Starts serving `svc` on `addr` with explicit socket tuning.
///
/// # Errors
///
/// Any error from binding the listener.
pub fn serve_with<A: ToSocketAddrs>(
    addr: A,
    svc: Arc<Service>,
    tuning: ServerTuning,
) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_thread = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        let handlers = Arc::clone(&handlers);
        std::thread::Builder::new()
            .name("ktiler-svc-accept".into())
            .spawn(move || accept_loop(listener, svc, stop, handlers, tuning))?
    };
    Ok(Server { local_addr, svc, stop, handlers, accept_thread: Some(accept_thread) })
}

impl Server {
    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service behind this server.
    pub fn service(&self) -> &Arc<Service> {
        &self.svc
    }

    /// Whether a stop was requested (by a `SHUTDOWN` request or
    /// [`Server::request_stop`]).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests a stop; the accept loop and all handlers notice within
    /// their poll intervals.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Number of connection handler threads still running. Reaps finished
    /// handles first, so the count reflects live connections, not the
    /// total ever accepted.
    pub fn live_connections(&self) -> usize {
        let mut handlers = fault::lock(&self.handlers);
        reap_finished(&mut handlers);
        handlers.len()
    }

    /// Blocks until a stop is requested, then joins the front-end and
    /// shuts the service down (draining queued requests). Returns the
    /// service so the caller can dump final metrics.
    pub fn join(mut self) -> Arc<Service> {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.svc.shutdown();
        Arc::clone(&self.svc)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_stop();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Joins (and drops) every finished handler in `handlers`, keeping the
/// live ones. A handler that panicked is still reaped — the panic is
/// contained to its own connection.
fn reap_finished(handlers: &mut Vec<JoinHandle<()>>) {
    let mut live = Vec::with_capacity(handlers.len());
    for h in handlers.drain(..) {
        if h.is_finished() {
            let _ = h.join();
        } else {
            live.push(h);
        }
    }
    *handlers = live;
}

fn accept_loop(
    listener: TcpListener,
    svc: Arc<Service>,
    stop: Arc<AtomicBool>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    tuning: ServerTuning,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let svc = Arc::clone(&svc);
                let stop = Arc::clone(&stop);
                let spawned = std::thread::Builder::new()
                    .name("ktiler-svc-conn".into())
                    .spawn(move || handle_connection(stream, &svc, &stop, tuning));
                let mut handlers = fault::lock(&handlers);
                reap_finished(&mut handlers);
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => continue, // connection dropped; client will retry
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for h in std::mem::take(&mut *fault::lock(&handlers)) {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, svc: &Service, stop: &AtomicBool, tuning: ServerTuning) {
    let _ = stream.set_read_timeout(Some(tuning.read_poll));
    let _ = stream.set_write_timeout(Some(tuning.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let client = svc.client();
    loop {
        // Each blocked read re-checks the stop flag; a frame left half
        // received past the stall deadline drops the connection, while an
        // idle peer (no frame started) may wait indefinitely.
        let mut stalled_since: Option<Instant> = None;
        let frame = read_frame_polled(&mut reader, |mid_frame, e| {
            if stop.load(Ordering::SeqCst) {
                return Err(io::Error::other("server stopping"));
            }
            if !mid_frame {
                stalled_since = None;
                return Ok(());
            }
            let since = *stalled_since.get_or_insert_with(Instant::now);
            if since.elapsed() >= tuning.stall_timeout {
                return Err(io::Error::new(io::ErrorKind::TimedOut, e.to_string()));
            }
            Ok(())
        });
        let payload = match frame {
            Ok(Some(p)) => p,
            Ok(None) => return, // client hung up cleanly
            Err(_) => return,   // stop requested, stalled peer, torn frame or transport error
        };
        let response = match Request::decode(&payload) {
            Err(msg) => Response::Err(SvcError::BadRequest(msg)),
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Stats) => Response::Stats(client.metrics_json()),
            Ok(Request::Schedule(req)) => match client.schedule(req) {
                Ok(resp) => Response::Schedule(resp),
                Err(e) => Response::Err(e),
            },
            Ok(Request::Shutdown) => {
                let _ = write_frame(&mut writer, &Response::Bye.encode());
                stop.store(true, Ordering::SeqCst);
                return;
            }
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// Retry discipline of [`NetClient::request_with_retry`]: bounded
/// attempts with seeded, jittered exponential backoff.
///
/// The delay before retry `i` (1-based) is `base_delay * 2^(i-1)` capped
/// at `max_delay`, then jittered into the upper half of that range
/// (`[d/2, d]`) by a [`SplitMix64`] stream seeded from `seed` — two
/// clients with different seeds desynchronize instead of stampeding a
/// recovering server, and a fixed seed makes test timing reproducible.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `attempts: 1` never
    /// retries). Zero is treated as one.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Ceiling of the exponential backoff.
    pub max_delay: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0x6b74_696c_6572, // "ktiler"
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `retry` (1-based).
    /// Deterministic in `(seed, retry)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (retry.saturating_sub(1)).min(20))
            .min(self.max_delay);
        let mut rng = SplitMix64::new(self.seed ^ u64::from(retry));
        let half = exp / 2;
        let span_ns = exp.saturating_sub(half).as_nanos().min(u128::from(u64::MAX)) as u64;
        let jitter_ns = if span_ns == 0 { 0 } else { rng.next_u64() % (span_ns + 1) };
        half + Duration::from_nanos(jitter_ns)
    }
}

/// Whether a transport error is worth a reconnect-and-retry: the kinds a
/// crashing or restarting server produces, not protocol violations.
fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

/// A blocking TCP client speaking the framed protocol; used by
/// `ktiler_tool client` and the end-to-end tests.
pub struct NetClient {
    addr: SocketAddr,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl NetClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Any error from resolving the address, connecting or cloning the
    /// stream.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let (writer, reader) = Self::open(addr)?;
        Ok(NetClient { addr, writer, reader })
    }

    fn open(addr: SocketAddr) -> io::Result<(TcpStream, BufReader<TcpStream>)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok((writer, BufReader::new(stream)))
    }

    /// Drops the current connection and dials the server again.
    ///
    /// # Errors
    ///
    /// Any error from connecting or cloning the stream.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let (writer, reader) = Self::open(self.addr)?;
        self.writer = writer;
        self.reader = reader;
        Ok(())
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`io::ErrorKind::InvalidData`] when the server
    /// answers with an undecodable frame;
    /// [`io::ErrorKind::UnexpectedEof`] when it hangs up first.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload).map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
    }

    /// Like [`NetClient::request`], but on a retryable transport error
    /// the client reconnects and tries again, up to
    /// [`RetryPolicy::attempts`] total attempts with
    /// [`RetryPolicy::backoff`] between them.
    ///
    /// Only [idempotent](Request::is_idempotent) requests are retried —
    /// resending `SHUTDOWN` after a torn reply could kill a server that
    /// was restarted in between. Non-idempotent requests and
    /// non-retryable errors (e.g. a protocol violation) fail on the first
    /// error, exactly like [`NetClient::request`].
    ///
    /// # Errors
    ///
    /// The last attempt's error once the budget is exhausted.
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> io::Result<Response> {
        let attempts = policy.attempts.max(1);
        let mut last_err = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                std::thread::sleep(policy.backoff(attempt - 1));
                if let Err(e) = self.reconnect() {
                    if is_retryable(&e) && attempt < attempts {
                        last_err = Some(e);
                        continue;
                    }
                    return Err(e);
                }
            }
            match self.request(req) {
                Ok(resp) => return Ok(resp),
                Err(e) if req.is_idempotent() && is_retryable(&e) && attempt < attempts => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("retry budget exhausted")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_monotone_capped_and_jittered_into_upper_half() {
        let p = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(400),
            seed: 7,
        };
        for retry in 1..=8 {
            let d = p.backoff(retry);
            assert_eq!(d, p.backoff(retry), "deterministic at retry {retry}");
            let exp = p.base_delay.saturating_mul(1u32 << (retry - 1).min(20)).min(p.max_delay);
            assert!(
                d >= exp / 2 && d <= exp,
                "retry {retry}: {d:?} outside [{:?}, {exp:?}]",
                exp / 2
            );
        }
        assert!(p.backoff(20) <= p.max_delay, "capped at max_delay");
        assert_ne!(
            RetryPolicy { seed: 8, ..p }.backoff(3),
            p.backoff(3),
            "seed changes the jitter"
        );
    }

    #[test]
    fn retryable_kinds() {
        assert!(is_retryable(&io::Error::new(io::ErrorKind::UnexpectedEof, "x")));
        assert!(is_retryable(&io::Error::new(io::ErrorKind::ConnectionRefused, "x")));
        assert!(is_retryable(&io::Error::new(io::ErrorKind::TimedOut, "x")));
        assert!(!is_retryable(&io::Error::new(io::ErrorKind::InvalidData, "x")));
        assert!(!is_retryable(&io::Error::other("x")));
    }
}
