//! The TCP front-end: accepts connections, decodes framed requests and
//! drives the in-process [`Service`] — the network path and the in-process
//! [`crate::Client`] path share the identical queue, single-flight table
//! and cache.
//!
//! The accept loop and each connection handler poll a shared stop flag
//! (non-blocking accept, short read timeouts) so a `SHUTDOWN` request —
//! or [`Server::request_stop`] — winds the whole front-end down without
//! help from the OS: no signals, no socket shootdown.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::proto::{read_frame, write_frame, Request, Response};
use crate::service::{Service, SvcError};

/// How long the accept loop sleeps between polls of an idle listener.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Read timeout of an idle connection; bounds how stale the stop flag can
/// be when a client goes quiet.
const READ_POLL: Duration = Duration::from_millis(200);

/// A running TCP front-end over a [`Service`].
pub struct Server {
    local_addr: SocketAddr,
    svc: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Starts serving `svc` on `addr` (e.g. `127.0.0.1:0` for an ephemeral
/// port; the bound address is [`Server::local_addr`]).
///
/// # Errors
///
/// Any error from binding the listener.
pub fn serve<A: ToSocketAddrs>(addr: A, svc: Arc<Service>) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("ktiler-svc-accept".into())
            .spawn(move || accept_loop(listener, svc, stop))
            .expect("spawn accept thread")
    };
    Ok(Server { local_addr, svc, stop, accept_thread: Some(accept_thread) })
}

impl Server {
    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service behind this server.
    pub fn service(&self) -> &Arc<Service> {
        &self.svc
    }

    /// Whether a stop was requested (by a `SHUTDOWN` request or
    /// [`Server::request_stop`]).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests a stop; the accept loop and all handlers notice within
    /// their poll intervals.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until a stop is requested, then joins the front-end and
    /// shuts the service down (draining queued requests). Returns the
    /// service so the caller can dump final metrics.
    pub fn join(mut self) -> Arc<Service> {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.svc.shutdown();
        Arc::clone(&self.svc)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_stop();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, svc: Arc<Service>, stop: Arc<AtomicBool>) {
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let svc = Arc::clone(&svc);
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name("ktiler-svc-conn".into())
                    .spawn(move || handle_connection(stream, &svc, &stop))
                    .expect("spawn connection thread");
                handlers.lock().expect("handler list poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for h in std::mem::take(&mut *handlers.lock().expect("handler list poisoned")) {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, svc: &Service, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let client = svc.client();
    while !stop.load(Ordering::SeqCst) {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // client hung up cleanly
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue; // idle poll; go re-check the stop flag
            }
            Err(_) => return, // torn frame or transport error: drop the connection
        };
        let response = match Request::decode(&payload) {
            Err(msg) => Response::Err(SvcError::BadRequest(msg)),
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Stats) => Response::Stats(client.metrics_json()),
            Ok(Request::Schedule(req)) => match client.schedule(req) {
                Ok(resp) => Response::Schedule(resp),
                Err(e) => Response::Err(e),
            },
            Ok(Request::Shutdown) => {
                let _ = write_frame(&mut writer, &Response::Bye.encode());
                stop.store(true, Ordering::SeqCst);
                return;
            }
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// A blocking TCP client speaking the framed protocol; used by
/// `ktiler_tool client` and the end-to-end tests.
pub struct NetClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl NetClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Any error from connecting or cloning the stream.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(NetClient { writer, reader: BufReader::new(stream) })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`io::ErrorKind::InvalidData`] when the server
    /// answers with an undecodable frame;
    /// [`io::ErrorKind::UnexpectedEof`] when it hangs up first.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload).map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
    }
}
