//! The TCP front-end: a single-threaded readiness event loop that
//! multiplexes every connection, decodes framed requests and drives a
//! [`FrontEnd`] — the in-process [`Service`] here, the gateway's router in
//! the `ktiler-gateway` crate. The network path and the in-process
//! [`crate::Client`] path share the identical queue, single-flight table
//! and cache.
//!
//! **Why an event loop.** The previous front-end spawned one thread per
//! connection; at the multi-node scale this repo now targets (a gateway
//! holding 10k client connections plus per-node fan-out), 10k idle
//! connections would cost 10k stacks. Instead one thread owns a
//! non-blocking listener and every non-blocking stream, and sweeps them:
//! accept what's pending, read what's readable (each connection keeps its
//! parser state in a [`FrameDecoder`] between sweeps), hand complete
//! requests to the front-end, poll outstanding [`Ticket`]s, flush what's
//! writable. Requests that compute ([`Dispatch::Pending`]) never block the
//! loop — the service's worker pool computes them while the loop keeps
//! sweeping — and responses are delivered strictly in request order per
//! connection. With no `poll(2)` available (std-only, `forbid(unsafe)`),
//! readiness is discovered by the sweep itself; an idle pass sleeps
//! briefly so a quiet server costs near-zero CPU, and any progress keeps
//! the loop hot.
//!
//! **Misbehaving peers.** The loop distinguishes an *idle* connection (no
//! bytes of a frame received — allowed to sit quietly forever) from a
//! *stalled* one (a frame started but not finished), cut off after
//! [`ServerTuning::stall_timeout`]. A peer that stops reading is bounded
//! by [`ServerTuning::write_timeout`] on unflushed output. A frame of a
//! foreign protocol version is answered with `ERR VERSION` and the
//! connection closed after the reply; a torn header loses framing and
//! drops the connection immediately.
//!
//! `SHUTDOWN` is intercepted by the loop itself: it acknowledges with
//! `BYE`, stops accepting, stops reading, serves every response already in
//! flight, flushes, and exits — no signals, no socket shootdown.

use std::collections::VecDeque;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_sim::SplitMix64;

use crate::fault;
use crate::key::CacheKey;
use crate::proto::{
    read_frame, write_frame, DecodeEvent, FrameDecoder, Request, Response, MAX_CONTROL_FRAME,
    PROTO_VERSION,
};
use crate::service::{Service, SvcError, Ticket};

/// Longest sleep of an idle sweep. Kept small — it bounds the latency a
/// freshly arrived byte can see — and capped further by the tuning's
/// `read_poll` so tests that shrink timeouts also shrink the sweep.
const IDLE_SLEEP_CAP: Duration = Duration::from_millis(1);

/// Socket-level knobs of the TCP front-end. [`ServerTuning::default`] is
/// right for production; tests shrink the timeouts to fail fast.
#[derive(Debug, Clone, Copy)]
pub struct ServerTuning {
    /// Upper bound on the idle sweep's sleep (historically the blocking
    /// read timeout; the event loop keeps the name so callers and flags
    /// are unchanged). Smaller means lower idle latency, more idle CPU.
    pub read_poll: Duration,
    /// How long unflushed response bytes may sit without progress before
    /// the connection is dropped — a client that stops reading cannot pin
    /// buffer memory forever.
    pub write_timeout: Duration,
    /// How long a connection may sit mid-frame (some bytes of a frame
    /// received, the rest missing) before it is dropped as stalled. Idle
    /// connections — no frame in progress — are never timed out.
    pub stall_timeout: Duration,
}

impl Default for ServerTuning {
    fn default() -> Self {
        ServerTuning {
            read_poll: Duration::from_millis(200),
            write_timeout: Duration::from_secs(10),
            stall_timeout: Duration::from_secs(10),
        }
    }
}

/// What a [`FrontEnd`] does with one decoded request.
pub enum Dispatch {
    /// The response is known now; the loop queues it for writing.
    Ready(Response),
    /// The response is being computed elsewhere (a worker pool, a remote
    /// node); the loop polls the ticket and writes the response when it
    /// lands, without ever blocking on it.
    Pending(Ticket),
    /// Like [`Dispatch::Pending`], but for verbs whose responses are not
    /// schedules ([`Ticket`] is typed to a [`ScheduleResponse`](crate::service::ScheduleResponse));
    /// `SYNC` answers through one of these so a round against dead peers
    /// never stalls the event loop.
    PendingRaw(ResponseTicket),
}

/// A poll-able slot for a raw [`Response`] computed off-loop — the untyped
/// sibling of [`Ticket`].
pub struct ResponseTicket {
    cell: Arc<Mutex<Option<Response>>>,
}

/// The fulfilling half of a [`ResponseTicket::pair`]. Dropping an
/// unfulfilled sink (the computing thread panicked, or was never spawned)
/// fulfills the ticket with a structured error — the waiting connection is
/// always answered, never left hung.
pub struct ResponseSink {
    cell: Arc<Mutex<Option<Response>>>,
}

impl ResponseTicket {
    /// An unfulfilled ticket and the sink that fulfills it.
    pub fn pair() -> (ResponseTicket, ResponseSink) {
        let cell = Arc::new(Mutex::new(None));
        (ResponseTicket { cell: Arc::clone(&cell) }, ResponseSink { cell })
    }

    /// Takes the response if one landed; `None` means still in flight.
    pub fn try_take(&mut self) -> Option<Response> {
        fault::lock(&self.cell).take()
    }
}

impl ResponseSink {
    /// Fulfills the paired ticket. First fulfillment wins; later calls
    /// (including the drop guard) are ignored.
    pub fn fulfill(&self, r: Response) {
        let mut cell = fault::lock(&self.cell);
        if cell.is_none() {
            *cell = Some(r);
        }
    }
}

impl Drop for ResponseSink {
    fn drop(&mut self) {
        self.fulfill(Response::Err(SvcError::Internal(
            "response computation dropped its sink".into(),
        )));
    }
}

/// What the event loop serves: anything that can turn a request into a
/// response (or a promise of one). [`Service`] implements it directly;
/// the gateway implements it with a forwarding pool.
pub trait FrontEnd: Send + Sync + 'static {
    /// Handles one request. `SHUTDOWN` is intercepted by the event loop
    /// and never reaches this method from the network path.
    fn handle(&self, req: Request) -> Dispatch;

    /// Winds down the backing machinery (drain queues, join workers).
    /// Called by [`Server::join`] after the event loop has exited.
    fn wind_down(&self) {}
}

impl FrontEnd for Service {
    fn handle(&self, req: Request) -> Dispatch {
        match req {
            Request::Ping => Dispatch::Ready(Response::Pong),
            Request::Stats => Dispatch::Ready(Response::Stats(self.metrics_json())),
            Request::Fetch(key) => Dispatch::Ready(match self.client().fetch_artifact(&key) {
                Some(text) => Response::Artifact { key, text },
                None => Response::Err(SvcError::NotFound),
            }),
            Request::Put { key, text } => {
                Dispatch::Ready(match self.client().put_artifact(&key, &text) {
                    Ok(()) => Response::Stored,
                    Err(e) => Response::Err(e),
                })
            }
            Request::Schedule(req) => match self.client().submit(req) {
                Ok(ticket) => Dispatch::Pending(ticket),
                Err(e) => Dispatch::Ready(Response::Err(e)),
            },
            Request::Digest => Dispatch::Ready(match self.client().digest() {
                Ok(keys) => Response::Digest(keys),
                Err(e) => Response::Err(e),
            }),
            Request::Sync => {
                // A repair round talks to peers (possibly dead ones, each
                // costing a timeout), so it runs on its own thread; the
                // loop polls the raw ticket like any pending schedule.
                let (ticket, sink) = ResponseTicket::pair();
                let client = self.client();
                let spawned = std::thread::Builder::new().name("ktiler-svc-sync-now".into()).spawn(
                    move || {
                        let (pulled, failed, peers) = client.sync_now();
                        sink.fulfill(Response::Synced { pulled, failed, peers });
                    },
                );
                match spawned {
                    Ok(_) => Dispatch::PendingRaw(ticket),
                    Err(e) => Dispatch::Ready(Response::Err(SvcError::Internal(format!(
                        "could not start sync round: {e}"
                    )))),
                }
            }
            Request::Drain { .. } => Dispatch::Ready(Response::Err(SvcError::BadRequest(
                "DRAIN is a gateway verb; nodes have no membership table".into(),
            ))),
            // Only reachable from direct callers; the loop intercepts it.
            Request::Shutdown => Dispatch::Ready(Response::Bye),
        }
    }

    fn wind_down(&self) {
        self.shutdown();
    }
}

/// A running TCP front-end over a [`FrontEnd`] (a [`Service`] by default).
pub struct Server<F: FrontEnd = Service> {
    local_addr: SocketAddr,
    front: Arc<F>,
    stop: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    loop_thread: Option<JoinHandle<()>>,
}

/// Starts serving `svc` on `addr` with default [`ServerTuning`]
/// (e.g. `127.0.0.1:0` for an ephemeral port; the bound address is
/// [`Server::local_addr`]).
///
/// # Errors
///
/// Any error from binding the listener.
pub fn serve<A: ToSocketAddrs>(addr: A, svc: Arc<Service>) -> io::Result<Server> {
    serve_with(addr, svc, ServerTuning::default())
}

/// Starts serving `svc` on `addr` with explicit socket tuning.
///
/// # Errors
///
/// Any error from binding the listener.
pub fn serve_with<A: ToSocketAddrs>(
    addr: A,
    svc: Arc<Service>,
    tuning: ServerTuning,
) -> io::Result<Server> {
    serve_front(addr, svc, tuning)
}

/// Starts an event loop serving any [`FrontEnd`] on `addr`.
///
/// # Errors
///
/// Any error from binding the listener or spawning the loop thread.
pub fn serve_front<F: FrontEnd, A: ToSocketAddrs>(
    addr: A,
    front: Arc<F>,
    tuning: ServerTuning,
) -> io::Result<Server<F>> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let live = Arc::new(AtomicUsize::new(0));
    let loop_thread = {
        let front = Arc::clone(&front);
        let stop = Arc::clone(&stop);
        let live = Arc::clone(&live);
        std::thread::Builder::new()
            .name("ktiler-svc-eventloop".into())
            .spawn(move || EventLoop::new(listener, front, stop, live, tuning).run())?
    };
    Ok(Server { local_addr, front, stop, live, loop_thread: Some(loop_thread) })
}

impl<F: FrontEnd> Server<F> {
    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The front-end behind this server.
    pub fn service(&self) -> &Arc<F> {
        &self.front
    }

    /// Whether a stop was requested (by a `SHUTDOWN` request or
    /// [`Server::request_stop`]).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests a stop; the event loop notices within one sweep, serves
    /// what's already in flight, and exits.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Number of connections the event loop currently holds open.
    pub fn live_connections(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Blocks until a stop is requested, then joins the event loop and
    /// winds the front-end down (draining queued requests). Returns the
    /// front-end so the caller can dump final metrics.
    pub fn join(mut self) -> Arc<F> {
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
        self.front.wind_down();
        Arc::clone(&self.front)
    }
}

impl<F: FrontEnd> Drop for Server<F> {
    fn drop(&mut self) {
        self.request_stop();
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
    }
}

/// One response slot of a connection. Responses go out strictly in
/// request order, so a slow schedule ahead of a fast ping holds the ping
/// back (per connection — other connections are unaffected).
enum Slot {
    /// Encoded response payload, ready to frame and write.
    Done(Vec<u8>),
    /// Still being computed; polled each sweep.
    Wait(Ticket),
    /// A raw (non-schedule) response still being computed; polled each
    /// sweep.
    WaitRaw(ResponseTicket),
}

/// Per-connection state between sweeps.
struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Responses owed to this connection, in request order.
    pending: VecDeque<Slot>,
    /// Framed bytes queued for writing; `out_pos` marks how far the socket
    /// has taken them.
    out: Vec<u8>,
    out_pos: usize,
    /// When the current half-received frame started (stall clock).
    mid_frame_since: Option<Instant>,
    /// Since when `out` has bytes the peer hasn't taken (write clock;
    /// reset on any write progress).
    write_since: Option<Instant>,
    /// Close once everything owed is flushed (after `BYE`, `ERR VERSION`,
    /// or a read-side EOF with responses still in flight).
    close_after_flush: bool,
    /// The read side is finished (EOF or lost framing); stop reading.
    read_closed: bool,
    /// Remove this connection at the end of the sweep.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            dec: FrameDecoder::for_requests(),
            pending: VecDeque::new(),
            out: Vec::new(),
            out_pos: 0,
            mid_frame_since: None,
            write_since: None,
            close_after_flush: false,
            read_closed: false,
            dead: false,
        }
    }

    /// Whether nothing is owed to this connection anymore.
    fn drained(&self) -> bool {
        self.pending.is_empty() && self.out_pos >= self.out.len()
    }

    /// Frames and queues one encoded response payload.
    fn queue_response(&mut self, payload: &[u8]) {
        // Writing into a Vec cannot fail.
        let _ = write_frame(&mut self.out, payload);
        if self.write_since.is_none() {
            self.write_since = Some(Instant::now());
        }
    }
}

/// The sweep loop: owns the listener and every connection.
struct EventLoop<F: FrontEnd> {
    listener: Option<TcpListener>,
    front: Arc<F>,
    stop: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    tuning: ServerTuning,
    conns: Vec<Conn>,
}

impl<F: FrontEnd> EventLoop<F> {
    fn new(
        listener: TcpListener,
        front: Arc<F>,
        stop: Arc<AtomicBool>,
        live: Arc<AtomicUsize>,
        tuning: ServerTuning,
    ) -> Self {
        EventLoop { listener: Some(listener), front, stop, live, tuning, conns: Vec::new() }
    }

    fn run(mut self) {
        let idle_sleep = self.tuning.read_poll.min(IDLE_SLEEP_CAP);
        let mut buf = [0u8; 8192];
        loop {
            let stopping = self.stop.load(Ordering::SeqCst);
            if stopping {
                // Drain mode: no new connections, no new requests; serve
                // what's already in flight, flush, exit.
                self.listener = None;
                for c in &mut self.conns {
                    c.read_closed = true;
                    c.close_after_flush = true;
                    if c.drained() {
                        c.dead = true;
                    }
                }
            }
            let mut progress = false;
            progress |= self.accept_pending();
            if !stopping {
                progress |= self.pump_reads(&mut buf);
            }
            progress |= self.promote_ready();
            progress |= self.flush_writes();
            self.enforce_deadlines();
            self.conns.retain(|c| !c.dead);
            self.live.store(self.conns.len(), Ordering::SeqCst);
            if stopping && self.conns.is_empty() {
                return;
            }
            if !progress {
                std::thread::sleep(idle_sleep);
            }
        }
    }

    /// Accepts every connection the listener has queued.
    fn accept_pending(&mut self) -> bool {
        let Some(listener) = &self.listener else { return false };
        let mut progress = false;
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.conns.push(Conn::new(stream));
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE, aborted handshake):
                // the connection is lost, the listener is fine.
                Err(_) => return progress,
            }
        }
    }

    /// Reads whatever every readable connection has, feeding decoders and
    /// dispatching completed requests.
    fn pump_reads(&mut self, buf: &mut [u8]) -> bool {
        let mut progress = false;
        let mut events = Vec::new();
        for i in 0..self.conns.len() {
            if self.conns[i].dead || self.conns[i].read_closed {
                continue;
            }
            loop {
                // Re-borrow per read: `dispatch` below also needs the
                // connection list.
                match self.conns[i].stream.read(buf) {
                    Ok(0) => {
                        // EOF. Close now if nothing is owed; otherwise
                        // serve the in-flight responses first.
                        let c = &mut self.conns[i];
                        c.read_closed = true;
                        if c.drained() {
                            c.dead = true;
                        } else {
                            c.close_after_flush = true;
                        }
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        if self.conns[i].dec.feed(&buf[..n], &mut events).is_err() {
                            // Framing lost; no reliable way to answer.
                            self.conns[i].dead = true;
                            break;
                        }
                        for ev in events.drain(..) {
                            self.dispatch(i, ev);
                        }
                        if self.conns[i].dead || self.conns[i].read_closed {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.conns[i].dead = true;
                        break;
                    }
                }
            }
            let c = &mut self.conns[i];
            if c.dec.mid_frame() {
                c.mid_frame_since.get_or_insert_with(Instant::now);
            } else {
                c.mid_frame_since = None;
            }
        }
        progress
    }

    /// Turns one decoder event of connection `i` into queued work.
    fn dispatch(&mut self, i: usize, ev: DecodeEvent) {
        match ev {
            DecodeEvent::BadVersion { got } => {
                let c = &mut self.conns[i];
                c.pending.push_back(Slot::Done(
                    Response::Err(SvcError::VersionMismatch { got, expected: PROTO_VERSION })
                        .encode(),
                ));
                // Reject-and-report: the reply goes out, then the
                // connection closes — no second chance to misparse.
                c.read_closed = true;
                c.close_after_flush = true;
            }
            DecodeEvent::Frame(payload) => match Request::decode(&payload) {
                Err(msg) => self.conns[i]
                    .pending
                    .push_back(Slot::Done(Response::Err(SvcError::BadRequest(msg)).encode())),
                Ok(Request::Shutdown) => {
                    let c = &mut self.conns[i];
                    c.pending.push_back(Slot::Done(Response::Bye.encode()));
                    c.read_closed = true;
                    c.close_after_flush = true;
                    self.stop.store(true, Ordering::SeqCst);
                }
                Ok(req) => {
                    let slot = match self.front.handle(req) {
                        Dispatch::Ready(resp) => Slot::Done(resp.encode()),
                        Dispatch::Pending(ticket) => Slot::Wait(ticket),
                        Dispatch::PendingRaw(ticket) => Slot::WaitRaw(ticket),
                    };
                    self.conns[i].pending.push_back(slot);
                }
            },
            DecodeEvent::OversizedControl { verb, declared } => {
                // The payload was discarded, framing is intact; answer
                // with a typed error and keep the connection.
                self.conns[i].pending.push_back(Slot::Done(
                    Response::Err(SvcError::BadRequest(format!(
                        "{declared}-byte payload exceeds the {MAX_CONTROL_FRAME}-byte \
                         budget for control verb '{verb}'"
                    )))
                    .encode(),
                ));
            }
        }
    }

    /// Moves completed pending slots into each connection's write buffer,
    /// preserving per-connection request order.
    fn promote_ready(&mut self) -> bool {
        let mut progress = false;
        for c in &mut self.conns {
            if c.dead {
                continue;
            }
            while let Some(front) = c.pending.front_mut() {
                let payload = match front {
                    Slot::Done(p) => std::mem::take(p),
                    Slot::Wait(ticket) => match ticket.try_take() {
                        Some(Ok(resp)) => Response::Schedule(resp).encode(),
                        Some(Err(e)) => Response::Err(e).encode(),
                        None => break, // still computing; order bars later slots
                    },
                    Slot::WaitRaw(ticket) => match ticket.try_take() {
                        Some(resp) => resp.encode(),
                        None => break,
                    },
                };
                c.pending.pop_front();
                c.queue_response(&payload);
                progress = true;
            }
        }
        progress
    }

    /// Writes whatever each connection's peer will take.
    fn flush_writes(&mut self) -> bool {
        let mut progress = false;
        for c in &mut self.conns {
            if c.dead || c.out_pos >= c.out.len() {
                continue;
            }
            loop {
                match c.stream.write(&c.out[c.out_pos..]) {
                    Ok(0) => {
                        c.dead = true;
                        break;
                    }
                    Ok(n) => {
                        c.out_pos += n;
                        c.write_since = Some(Instant::now());
                        progress = true;
                        if c.out_pos >= c.out.len() {
                            c.out.clear();
                            c.out_pos = 0;
                            c.write_since = None;
                            if c.close_after_flush && c.pending.is_empty() {
                                c.dead = true;
                            }
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
        }
        progress
    }

    /// Drops stalled readers and stuck writers.
    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        for c in &mut self.conns {
            if c.dead {
                continue;
            }
            if c.mid_frame_since.is_some_and(|t| now - t >= self.tuning.stall_timeout) {
                c.dead = true;
            }
            if c.out_pos < c.out.len()
                && c.write_since.is_some_and(|t| now - t >= self.tuning.write_timeout)
            {
                c.dead = true;
            }
        }
    }
}

/// Retry discipline of [`NetClient::request_with_retry`]: bounded
/// attempts with seeded, jittered exponential backoff.
///
/// The delay before retry `i` (1-based) is `base_delay * 2^(i-1)` capped
/// at `max_delay`, then jittered into the upper half of that range
/// (`[d/2, d]`) by a [`SplitMix64`] stream seeded from `seed` — two
/// clients with different seeds desynchronize instead of stampeding a
/// recovering server, and a fixed seed makes test timing reproducible.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `attempts: 1` never
    /// retries). Zero is treated as one.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Ceiling of the exponential backoff.
    pub max_delay: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0x6b74_696c_6572, // "ktiler"
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `retry` (1-based).
    /// Deterministic in `(seed, retry)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (retry.saturating_sub(1)).min(20))
            .min(self.max_delay);
        let mut rng = SplitMix64::new(self.seed ^ u64::from(retry));
        let half = exp / 2;
        let span_ns = exp.saturating_sub(half).as_nanos().min(u128::from(u64::MAX)) as u64;
        let jitter_ns = if span_ns == 0 { 0 } else { rng.next_u64() % (span_ns + 1) };
        half + Duration::from_nanos(jitter_ns)
    }
}

/// Whether a transport error is worth a reconnect-and-retry: the kinds a
/// crashing or restarting server produces, not protocol violations.
fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

/// A blocking TCP client speaking the framed protocol; used by
/// `ktiler_tool client`, the gateway's per-node forwarders, peer
/// read-through fills and the end-to-end tests.
pub struct NetClient {
    addr: SocketAddr,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl NetClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Any error from resolving the address, connecting or cloning the
    /// stream.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let (writer, reader) = Self::open(addr)?;
        Ok(NetClient { addr, writer, reader })
    }

    /// Connects with `timeout` bounding the dial **and** every later read
    /// and write on the connection — the flavor for talking to a peer or
    /// shard that may be dead: a gateway or node must spend bounded time
    /// discovering that, not a TCP handshake's patience.
    ///
    /// # Errors
    ///
    /// Any error from resolving, dialing within the timeout, or
    /// configuring the stream.
    pub fn connect_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(NetClient { addr, writer, reader: BufReader::new(stream) })
    }

    fn open(addr: SocketAddr) -> io::Result<(TcpStream, BufReader<TcpStream>)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok((writer, BufReader::new(stream)))
    }

    /// Drops the current connection and dials the server again.
    ///
    /// # Errors
    ///
    /// Any error from connecting or cloning the stream.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let (writer, reader) = Self::open(self.addr)?;
        self.writer = writer;
        self.reader = reader;
        Ok(())
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`io::ErrorKind::InvalidData`] when the server
    /// answers with an undecodable frame;
    /// [`io::ErrorKind::UnexpectedEof`] when it hangs up first.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload).map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
    }

    /// Like [`NetClient::request`], but on a retryable transport error
    /// the client reconnects and tries again, up to
    /// [`RetryPolicy::attempts`] total attempts with
    /// [`RetryPolicy::backoff`] between them.
    ///
    /// Only [idempotent](Request::is_idempotent) requests are retried —
    /// resending `SHUTDOWN` after a torn reply could kill a server that
    /// was restarted in between. Non-idempotent requests and
    /// non-retryable errors (e.g. a protocol violation) fail on the first
    /// error, exactly like [`NetClient::request`].
    ///
    /// # Errors
    ///
    /// The last attempt's error once the budget is exhausted.
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> io::Result<Response> {
        let attempts = policy.attempts.max(1);
        let mut last_err = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                std::thread::sleep(policy.backoff(attempt - 1));
                if let Err(e) = self.reconnect() {
                    if is_retryable(&e) && attempt < attempts {
                        last_err = Some(e);
                        continue;
                    }
                    return Err(e);
                }
            }
            match self.request(req) {
                Ok(resp) => return Ok(resp),
                Err(e) if req.is_idempotent() && is_retryable(&e) && attempt < attempts => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("retry budget exhausted")))
    }
}

/// Asks the node at `addr` for the raw artifact of `key` (`FETCH`),
/// spending at most `timeout` on the dial and on each read/write. This is
/// the transport half of a read-through peer fill; the caller re-verifies
/// whatever comes back.
///
/// # Errors
///
/// Transport errors; [`io::ErrorKind::NotFound`] when the peer does not
/// hold the key; [`io::ErrorKind::InvalidData`] for any other reply.
pub fn fetch_from_peer(addr: &str, key: &CacheKey, timeout: Duration) -> io::Result<String> {
    let mut client = NetClient::connect_timeout(addr, timeout)?;
    match client.request(&Request::Fetch(*key))? {
        Response::Artifact { key: got, text } if got == *key => Ok(text),
        Response::Err(SvcError::NotFound) => {
            Err(io::Error::new(io::ErrorKind::NotFound, format!("peer {addr} does not hold {key}")))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected FETCH reply from {addr}: {other:?}"),
        )),
    }
}

/// Asks the node at `addr` for its live cache key set (`DIGEST`),
/// spending at most `timeout` on the dial and on each read/write — the
/// transport half of an anti-entropy round.
///
/// # Errors
///
/// Transport errors, or [`io::ErrorKind::InvalidData`] for any reply that
/// is not a digest.
pub fn digest_from_peer(addr: &str, timeout: Duration) -> io::Result<Vec<CacheKey>> {
    let mut client = NetClient::connect_timeout(addr, timeout)?;
    match client.request(&Request::Digest)? {
        Response::Digest(keys) => Ok(keys),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected DIGEST reply from {addr}: {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_monotone_capped_and_jittered_into_upper_half() {
        let p = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(400),
            seed: 7,
        };
        for retry in 1..=8 {
            let d = p.backoff(retry);
            assert_eq!(d, p.backoff(retry), "deterministic at retry {retry}");
            let exp = p.base_delay.saturating_mul(1u32 << (retry - 1).min(20)).min(p.max_delay);
            assert!(
                d >= exp / 2 && d <= exp,
                "retry {retry}: {d:?} outside [{:?}, {exp:?}]",
                exp / 2
            );
        }
        assert!(p.backoff(20) <= p.max_delay, "capped at max_delay");
        assert_ne!(
            RetryPolicy { seed: 8, ..p }.backoff(3),
            p.backoff(3),
            "seed changes the jitter"
        );
    }

    #[test]
    fn retryable_kinds() {
        assert!(is_retryable(&io::Error::new(io::ErrorKind::UnexpectedEof, "x")));
        assert!(is_retryable(&io::Error::new(io::ErrorKind::ConnectionRefused, "x")));
        assert!(is_retryable(&io::Error::new(io::ErrorKind::TimedOut, "x")));
        assert!(!is_retryable(&io::Error::new(io::ErrorKind::InvalidData, "x")));
        assert!(!is_retryable(&io::Error::other("x")));
    }

    #[test]
    fn fetch_from_a_dead_port_fails_fast() {
        // Nothing listens on this just-bound-then-dropped port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let t0 = Instant::now();
        let err = fetch_from_peer(&addr, &CacheKey { hi: 1, lo: 2 }, Duration::from_millis(500))
            .unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(5), "bounded by the timeout");
        // Refused (nothing listening) or reset — either way a transport
        // error, not a hang.
        assert!(err.kind() != io::ErrorKind::InvalidData, "{err}");
    }
}
