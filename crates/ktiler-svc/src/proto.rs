//! The wire protocol: versioned, length-prefixed frames carrying one-line
//! requests and text responses.
//!
//! A **frame** is a single ASCII digit naming the protocol version
//! ([`PROTO_VERSION`]), the ASCII decimal byte length of the payload, a
//! newline, then exactly that many payload bytes. The header stays
//! human-typable (`115\n` is "version 1, 15 bytes") and the payload is the
//! existing text formats (request lines, `.sched` artifacts, metrics
//! JSON), so a session can be driven or inspected with standard tools.
//! A well-formed frame of any *other* version is consumed and rejected
//! with a typed `VersionMismatch` — gateway↔node and client↔gateway
//! frames can evolve without silent misparses.
//!
//! Request payloads are a single line (plus, for `PUT`, a body):
//!
//! ```text
//! SCHEDULE optflow size=64 iters=3 levels=2 freq=1324,5010 deadline_ms=500
//! FETCH <32 hex>                     peer read-through: raw artifact or NOT_FOUND
//! PUT <32 hex>                       (body: the .sched text) replicate an artifact
//! DIGEST                             anti-entropy: the node's live key set
//! SYNC                               anti-entropy: run one repair round now
//! DRAIN <addr> [off]                 gateway admin: (un)drain a node
//! STATS
//! PING
//! SHUTDOWN
//! ```
//!
//! Response payloads are a status line plus an optional body:
//!
//! ```text
//! OK HIT key=<32 hex> launches=<n>   (body: the .sched text)
//! OK ARTIFACT key=<32 hex>           (body: the raw artifact text)
//! OK STORED
//! OK DIGEST count=<n>                (body: one 32-hex key per line)
//! OK SYNCED pulled=<p> failed=<f> peers=<n>
//! OK DRAINED node=<addr> draining=<true|false>
//! OK STATS                           (body: metrics JSON)
//! OK PONG
//! OK BYE
//! ERR <CODE> <message>
//! ```
//!
//! **Per-verb frame budgets.** Only `SCHEDULE` and `PUT` legitimately
//! carry large payloads; every other verb is a short control line. A
//! server-side decoder built with [`FrameDecoder::for_requests`] caps
//! control-verb payloads at [`MAX_CONTROL_FRAME`]: as soon as the verb of
//! an over-budget frame is identified the decoder stops buffering,
//! discards the rest of the payload (framing stays intact), and reports
//! [`DecodeEvent::OversizedControl`] so the server can answer with a
//! typed error instead of first allocating up to [`MAX_FRAME`] bytes for
//! a `PING`.

use std::io::{self, BufRead, Write};

use crate::key::CacheKey;
use crate::service::{Outcome, ScheduleRequest, ScheduleResponse, SvcError, WorkloadSpec};

/// The protocol version this build speaks, written as the leading byte of
/// every frame header. Bump it when the meaning of any frame changes; a
/// peer of another version is answered with `ERR VERSION` and dropped
/// instead of misparsed.
pub const PROTO_VERSION: u8 = 1;

/// Largest accepted frame payload (64 MiB) — far above any real schedule,
/// small enough that a malformed header cannot ask the server to allocate
/// unbounded memory.
pub const MAX_FRAME: usize = 64 << 20;

/// Largest accepted payload for control verbs (everything except
/// `SCHEDULE` and `PUT`) on a server-side request decoder built with
/// [`FrameDecoder::for_requests`]. Control requests are one short line, so
/// 4 KiB is orders of magnitude of slack — and rejecting above it means a
/// hostile `PING` cannot make the server allocate [`MAX_FRAME`] bytes.
pub const MAX_CONTROL_FRAME: usize = 4096;

/// Longest accepted frame header (decimal digits between the version byte
/// and the newline).
const MAX_HEADER_DIGITS: usize = 20;

/// How many leading payload bytes suffice to identify a request verb: the
/// longest real verb (`SCHEDULE`) is 8 bytes, so any undelimited token this
/// long is already known not to be an exempt verb.
const VERB_PROBE: usize = 12;

fn bad(m: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m)
}

/// The error a reader surfaces for a well-formed frame of a foreign
/// protocol version ([`io::ErrorKind::Unsupported`], so transport errors
/// and version skew stay distinguishable).
fn version_error(got: u8) -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        format!("peer speaks protocol version {got}, this build speaks {PROTO_VERSION}"),
    )
}

/// Writes one frame.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] when the payload exceeds [`MAX_FRAME`];
/// otherwise any transport error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME}-byte limit", payload.len()),
        ));
    }
    writeln!(w, "{PROTO_VERSION}{}", payload.len())?;
    w.write_all(payload)?;
    w.flush()
}

/// One completed unit of [`FrameDecoder`] output.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeEvent {
    /// A complete frame of the supported version.
    Frame(Vec<u8>),
    /// A well-formed frame of a foreign version; its payload was consumed
    /// and discarded so the stream stays framed, and the caller can answer
    /// with a typed [`SvcError::VersionMismatch`] before closing.
    BadVersion {
        /// The version byte the peer sent.
        got: u8,
    },
    /// A control-verb frame whose declared payload exceeds
    /// [`MAX_CONTROL_FRAME`] on a budgeted decoder
    /// ([`FrameDecoder::for_requests`]). The payload was consumed and
    /// discarded — never buffered — so the stream stays framed and the
    /// server can answer with a typed [`SvcError::BadRequest`].
    OversizedControl {
        /// The verb token the frame led with (possibly truncated to the
        /// probe window for unknown verbs).
        verb: String,
        /// The payload length the frame header declared.
        declared: usize,
    },
}

/// What [`FrameDecoder::classify`] concluded about an over-budget frame.
enum Classified {
    /// Not enough bytes yet to identify the verb.
    Undecided,
    /// A bulk verb (`SCHEDULE`/`PUT`) — buffer the payload normally.
    Exempt,
    /// A control verb — discard the payload and report it.
    Control(String),
}

#[derive(Debug)]
enum DecodeState {
    /// Waiting for the version byte of the next frame.
    Version,
    /// Version consumed; accumulating length digits up to the newline.
    Length { version: u8, digits: Vec<u8> },
    /// Header complete; consuming payload bytes. `exempt` is true once the
    /// frame is known to be allowed its full declared length (in-budget,
    /// foreign-version, or a bulk verb).
    Payload { version: u8, expected: usize, got: Vec<u8>, exempt: bool },
    /// An over-budget control frame: consuming (and dropping) the payload
    /// remainder so the stream stays framed.
    Discard { verb: String, declared: usize, remaining: usize },
}

/// An incremental frame decoder: feed it whatever bytes a non-blocking
/// read produced, collect completed frames. This is the piece a readiness
/// event loop needs — no thread may block inside a half-received frame,
/// so all parser state lives here between reads. The blocking readers
/// ([`read_frame`], [`read_frame_polled`]) are thin drivers over it.
#[derive(Debug)]
pub struct FrameDecoder {
    state: DecodeState,
    control_budget: Option<usize>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder at a frame boundary with no per-verb budget (the right
    /// choice for response streams, where bulk payloads are the norm).
    pub fn new() -> Self {
        FrameDecoder { state: DecodeState::Version, control_budget: None }
    }

    /// A decoder for server-side request streams: control verbs are held
    /// to [`MAX_CONTROL_FRAME`]. An over-budget control frame is consumed
    /// without buffering and reported as
    /// [`DecodeEvent::OversizedControl`]; `SCHEDULE` and `PUT` frames are
    /// exempt up to [`MAX_FRAME`].
    pub fn for_requests() -> Self {
        FrameDecoder { state: DecodeState::Version, control_budget: Some(MAX_CONTROL_FRAME) }
    }

    /// Whether at least one byte of the current frame has been consumed —
    /// the flag that separates an *idle* peer (fine to wait on forever)
    /// from a *stalled* one (worth a deadline).
    pub fn mid_frame(&self) -> bool {
        !matches!(self.state, DecodeState::Version)
    }

    /// How many payload bytes the current frame still needs, when the
    /// decoder is inside a payload. Callers reading from a shared stream
    /// use it to cap reads at the frame boundary.
    pub fn payload_wanted(&self) -> Option<usize> {
        match &self.state {
            DecodeState::Payload { expected, got, .. } => Some(expected - got.len()),
            DecodeState::Discard { remaining, .. } => Some(*remaining),
            _ => None,
        }
    }

    /// Consumes `bytes`, appending every completed frame to `events`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on a malformed header (non-digit
    /// where a digit belongs, empty or oversized length). The decoder is
    /// unusable afterwards — the stream has lost framing and must be
    /// dropped.
    pub fn feed(&mut self, mut bytes: &[u8], events: &mut Vec<DecodeEvent>) -> io::Result<()> {
        while !bytes.is_empty() {
            match &mut self.state {
                DecodeState::Version => {
                    let b = bytes[0];
                    bytes = &bytes[1..];
                    if !b.is_ascii_digit() {
                        return Err(bad(format!("malformed frame version byte 0x{b:02x}")));
                    }
                    self.state = DecodeState::Length { version: b - b'0', digits: Vec::new() };
                }
                DecodeState::Length { version, digits } => {
                    let b = bytes[0];
                    bytes = &bytes[1..];
                    if b == b'\n' {
                        if digits.is_empty() {
                            return Err(bad("empty frame length".into()));
                        }
                        let len: usize = std::str::from_utf8(digits)
                            .ok()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| bad("unparseable frame length".into()))?;
                        if len > MAX_FRAME {
                            return Err(bad(format!(
                                "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
                            )));
                        }
                        let version = *version;
                        if len == 0 {
                            events.push(Self::complete(version, Vec::new()));
                            self.state = DecodeState::Version;
                        } else {
                            // Foreign-version payloads are already consumed
                            // and dropped wholesale by `complete`, so the
                            // budget only concerns our own version.
                            let exempt = version != PROTO_VERSION
                                || self.control_budget.is_none_or(|b| len <= b);
                            self.state = DecodeState::Payload {
                                version,
                                expected: len,
                                got: Vec::with_capacity(len.min(64 << 10)),
                                exempt,
                            };
                        }
                    } else if !b.is_ascii_digit() || digits.len() >= MAX_HEADER_DIGITS {
                        return Err(bad(format!("malformed frame header byte 0x{b:02x}")));
                    } else {
                        digits.push(b);
                    }
                }
                DecodeState::Payload { version, expected, got, exempt } => {
                    let take = (*expected - got.len()).min(bytes.len());
                    got.extend_from_slice(&bytes[..take]);
                    bytes = &bytes[take..];
                    if !*exempt {
                        match Self::classify(got, *expected) {
                            Classified::Undecided => {}
                            Classified::Exempt => *exempt = true,
                            Classified::Control(verb) => {
                                let declared = *expected;
                                let remaining = declared - got.len();
                                if remaining == 0 {
                                    events.push(DecodeEvent::OversizedControl { verb, declared });
                                    self.state = DecodeState::Version;
                                } else {
                                    self.state = DecodeState::Discard { verb, declared, remaining };
                                }
                                continue;
                            }
                        }
                    }
                    if got.len() == *expected {
                        let payload = std::mem::take(got);
                        events.push(Self::complete(*version, payload));
                        self.state = DecodeState::Version;
                    }
                }
                DecodeState::Discard { verb, declared, remaining } => {
                    let take = (*remaining).min(bytes.len());
                    bytes = &bytes[take..];
                    *remaining -= take;
                    if *remaining == 0 {
                        let verb = std::mem::take(verb);
                        let declared = *declared;
                        events.push(DecodeEvent::OversizedControl { verb, declared });
                        self.state = DecodeState::Version;
                    }
                }
            }
        }
        Ok(())
    }

    /// Identifies the verb of an over-budget frame from its leading bytes.
    /// A decision needs either a delimiter, a token longer than any exempt
    /// verb, or the full payload.
    fn classify(got: &[u8], expected: usize) -> Classified {
        let end = match got.iter().position(|&b| matches!(b, b' ' | b'\n' | b'\r')) {
            Some(e) => e,
            None if got.len() >= VERB_PROBE || got.len() == expected => got.len().min(VERB_PROBE),
            None => return Classified::Undecided,
        };
        match &got[..end.min(VERB_PROBE)] {
            b"SCHEDULE" | b"PUT" => Classified::Exempt,
            verb => Classified::Control(String::from_utf8_lossy(verb).into_owned()),
        }
    }

    fn complete(version: u8, payload: Vec<u8>) -> DecodeEvent {
        if version == PROTO_VERSION {
            DecodeEvent::Frame(payload)
        } else {
            DecodeEvent::BadVersion { got: version }
        }
    }
}

/// Reads one frame; `Ok(None)` on a clean end-of-stream (EOF before the
/// first header byte).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for malformed or oversized headers and
/// for EOF mid-frame; [`io::ErrorKind::Unsupported`] for a well-formed
/// frame of a foreign protocol version (consumed, so the caller may still
/// answer on the stream); otherwise any transport error (including
/// `WouldBlock`/`TimedOut` from a read timeout, which callers polling an
/// idle connection should treat as "no frame yet").
pub fn read_frame<R: BufRead>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    read_frame_polled(r, |_, e| Err(e))
}

/// Reads one frame from a stream with a read timeout, retrying timed-out
/// reads **without losing partial progress** — a `WouldBlock` surfacing
/// mid-header or mid-payload leaves all parser state in the
/// [`FrameDecoder`] this reader drives.
///
/// On every `WouldBlock`/`TimedOut` read, `on_block(mid_frame, err)` is
/// consulted: return `Ok(())` to retry the read (the socket's own read
/// timeout paces the polling), or `Err(..)` to abort with that error.
/// `mid_frame` is true once at least one byte of the current frame has
/// been consumed.
///
/// # Errors
///
/// As [`read_frame`], plus whatever `on_block` returns to abort.
pub fn read_frame_polled<R: BufRead>(
    r: &mut R,
    mut on_block: impl FnMut(bool, io::Error) -> io::Result<()>,
) -> io::Result<Option<Vec<u8>>> {
    let mut dec = FrameDecoder::new();
    let mut events = Vec::new();
    let mut scratch = [0u8; 8192];
    loop {
        // Never read past the current frame: one byte at a time through the
        // header, then exactly the payload remainder (the BufRead amortizes
        // the byte-sized reads).
        let want = dec.payload_wanted().map_or(1, |n| n.clamp(1, scratch.len()));
        match r.read(&mut scratch[..want]) {
            Ok(0) => {
                if !dec.mid_frame() {
                    return Ok(None);
                }
                return Err(bad("end of stream inside a frame".into()));
            }
            Ok(n) => {
                dec.feed(&scratch[..n], &mut events)?;
                if let Some(ev) = events.pop() {
                    match ev {
                        DecodeEvent::Frame(p) => return Ok(Some(p)),
                        DecodeEvent::BadVersion { got } => return Err(version_error(got)),
                        // Unreachable: the blocking readers drive an
                        // unbudgeted decoder.
                        DecodeEvent::OversizedControl { verb, declared } => {
                            return Err(bad(format!(
                                "oversized control frame ({verb}, {declared} bytes)"
                            )));
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                on_block(dec.mid_frame(), e)?;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Request a schedule.
    Schedule(ScheduleRequest),
    /// Peer read-through: fetch the raw artifact of a content key, if this
    /// node's cache holds it. The receiver does **no** computation and no
    /// verification — the fetching peer re-verifies against its own
    /// request context before serving or storing the artifact.
    Fetch(CacheKey),
    /// Replicate an artifact into this node's cache (gateway hot-key
    /// replication). The text is parsed for sanity on receipt and, like
    /// every artifact, re-verified on any later load.
    Put {
        /// The content-addressed key the artifact is stored under.
        key: CacheKey,
        /// The artifact text.
        text: String,
    },
    /// Anti-entropy: ask for the node's live cache key set (one key per
    /// body line in the response) so a replica peer can pull what it is
    /// missing.
    Digest,
    /// Anti-entropy: run one repair round against the node's configured
    /// peers right now and report what it pulled.
    Sync,
    /// Gateway admin: drain (`on == true`) or restore (`on == false`) a
    /// node. A draining node keeps being health-probed but receives no new
    /// traffic.
    Drain {
        /// The node address exactly as listed in the gateway config.
        node: String,
        /// `true` to drain, `false` to restore.
        on: bool,
    },
    /// Request the metrics registry as JSON.
    Stats,
    /// Liveness check.
    Ping,
    /// Ask the server to stop accepting connections and shut down.
    Shutdown,
}

impl Request {
    /// Whether retrying this request after a transport failure is safe.
    /// Scheduling is a pure function of its inputs,
    /// `FETCH`/`DIGEST`/`STATS`/`PING` are read-only, `PUT` stores
    /// content-addressed bytes (a resend stores the identical artifact),
    /// `SYNC` converges toward the same state however often it runs, and
    /// `DRAIN` sets a flag to an absolute value; `SHUTDOWN` is not
    /// idempotent — a retry could reach (and kill) a freshly restarted
    /// server.
    pub fn is_idempotent(&self) -> bool {
        match self {
            Request::Schedule(_)
            | Request::Fetch(_)
            | Request::Put { .. }
            | Request::Digest
            | Request::Sync
            | Request::Drain { .. }
            | Request::Stats
            | Request::Ping => true,
            Request::Shutdown => false,
        }
    }

    /// Renders the request's status line (the body of a `PUT` is not
    /// included — see [`Request::encode`]).
    pub fn to_line(&self) -> String {
        match self {
            Request::Schedule(req) => {
                let mut line =
                    format!("SCHEDULE {} freq={},{}", req.workload, req.gpu_mhz, req.mem_mhz);
                if let Some(ms) = req.deadline_ms {
                    line.push_str(&format!(" deadline_ms={ms}"));
                }
                line
            }
            Request::Fetch(key) => format!("FETCH {key}"),
            Request::Put { key, .. } => format!("PUT {key}"),
            Request::Digest => "DIGEST".into(),
            Request::Sync => "SYNC".into(),
            Request::Drain { node, on } => {
                format!("DRAIN {node}{}", if *on { "" } else { " off" })
            }
            Request::Stats => "STATS".into(),
            Request::Ping => "PING".into(),
            Request::Shutdown => "SHUTDOWN".into(),
        }
    }

    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Put { text, .. } => format!("{}\n{text}", self.to_line()).into_bytes(),
            _ => self.to_line().into_bytes(),
        }
    }

    /// Parses a request line (without any body).
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed line.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        Self::parse_parts(line, "")
    }

    fn parse_parts(line: &str, body: &str) -> Result<Self, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.split_first() {
            Some((&"SCHEDULE", rest)) => {
                let mut gpu_mhz = None;
                let mut mem_mhz = None;
                let mut deadline_ms = None;
                let mut workload_tokens = Vec::new();
                for tok in rest {
                    if let Some(v) = tok.strip_prefix("freq=") {
                        let (g, m) = v
                            .split_once(',')
                            .ok_or_else(|| format!("freq must be gpu,mem MHz, got '{v}'"))?;
                        gpu_mhz = Some(g.parse().map_err(|_| format!("bad gpu MHz in '{tok}'"))?);
                        mem_mhz = Some(m.parse().map_err(|_| format!("bad mem MHz in '{tok}'"))?);
                    } else if let Some(v) = tok.strip_prefix("deadline_ms=") {
                        deadline_ms =
                            Some(v.parse().map_err(|_| format!("bad deadline in '{tok}'"))?);
                    } else {
                        workload_tokens.push(*tok);
                    }
                }
                let workload = WorkloadSpec::parse(&workload_tokens)?;
                let defaults = ScheduleRequest::new(workload);
                Ok(Request::Schedule(ScheduleRequest {
                    workload,
                    gpu_mhz: gpu_mhz.unwrap_or(defaults.gpu_mhz),
                    mem_mhz: mem_mhz.unwrap_or(defaults.mem_mhz),
                    deadline_ms,
                }))
            }
            Some((&"FETCH", [key])) => {
                let key = key.parse().map_err(|_| format!("bad cache key '{key}'"))?;
                Ok(Request::Fetch(key))
            }
            Some((&"PUT", [key])) => {
                let key = key.parse().map_err(|_| format!("bad cache key '{key}'"))?;
                if body.is_empty() {
                    return Err("PUT carries no artifact body".into());
                }
                Ok(Request::Put { key, text: body.to_string() })
            }
            Some((&"DIGEST", [])) => Ok(Request::Digest),
            Some((&"SYNC", [])) => Ok(Request::Sync),
            Some((&"DRAIN", rest)) => match rest {
                [node] | [node, "on"] => Ok(Request::Drain { node: (*node).to_string(), on: true }),
                [node, "off"] => Ok(Request::Drain { node: (*node).to_string(), on: false }),
                _ => Err("DRAIN takes a node address and an optional on|off".into()),
            },
            Some((&"STATS", [])) => Ok(Request::Stats),
            Some((&"PING", [])) => Ok(Request::Ping),
            Some((&"SHUTDOWN", [])) => Ok(Request::Shutdown),
            Some((&verb, _)) => Err(format!("unknown or malformed request '{verb}'")),
            None => Err("empty request".into()),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed payload.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
        let (line, body) = match text.split_once('\n') {
            Some((l, b)) => (l, b),
            None => (text, ""),
        };
        Self::parse_parts(line.trim_end_matches('\r'), body)
    }
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A served schedule.
    Schedule(ScheduleResponse),
    /// A raw artifact answering a [`Request::Fetch`].
    Artifact {
        /// The content key the artifact is stored under.
        key: CacheKey,
        /// The artifact's exact bytes as stored.
        text: String,
    },
    /// Acknowledgement of a [`Request::Put`].
    Stored,
    /// The node's live cache key set answering a [`Request::Digest`].
    Digest(Vec<CacheKey>),
    /// Result of a [`Request::Sync`] repair round.
    Synced {
        /// Artifacts pulled from peers and stored this round.
        pulled: u64,
        /// Keys that could not be pulled (transport, parse, or store).
        failed: u64,
        /// Peers consulted.
        peers: usize,
    },
    /// Acknowledgement of a [`Request::Drain`].
    Drained {
        /// The node address as listed in the gateway config.
        node: String,
        /// The node's draining flag after applying the request.
        draining: bool,
    },
    /// The metrics registry as JSON.
    Stats(String),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Acknowledgement of [`Request::Shutdown`].
    Bye,
    /// The request failed.
    Err(SvcError),
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Schedule(r) => format!(
                "OK {} key={} launches={}\n{}",
                r.outcome.as_str(),
                r.key,
                r.launches,
                r.text
            )
            .into_bytes(),
            Response::Artifact { key, text } => {
                format!("OK ARTIFACT key={key}\n{text}").into_bytes()
            }
            Response::Stored => b"OK STORED".to_vec(),
            Response::Digest(keys) => {
                let mut out = format!("OK DIGEST count={}", keys.len());
                for key in keys {
                    out.push('\n');
                    out.push_str(&key.to_string());
                }
                out.into_bytes()
            }
            Response::Synced { pulled, failed, peers } => {
                format!("OK SYNCED pulled={pulled} failed={failed} peers={peers}").into_bytes()
            }
            Response::Drained { node, draining } => {
                format!("OK DRAINED node={node} draining={draining}").into_bytes()
            }
            Response::Stats(json) => format!("OK STATS\n{json}").into_bytes(),
            Response::Pong => b"OK PONG".to_vec(),
            Response::Bye => b"OK BYE".to_vec(),
            Response::Err(e) => {
                let msg = match e {
                    SvcError::BadRequest(m) | SvcError::Pipeline(m) | SvcError::Internal(m) => {
                        m.clone()
                    }
                    SvcError::VersionMismatch { got, expected } => {
                        format!("got={got} expected={expected}")
                    }
                    _ => String::new(),
                };
                // The message must stay on the status line.
                let msg = msg.replace('\n', " ");
                format!("ERR {} {msg}", e.code()).trim_end().to_string().into_bytes()
            }
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed payload.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "response is not UTF-8".to_string())?;
        let (status, body) = match text.split_once('\n') {
            Some((s, b)) => (s, b),
            None => (text, ""),
        };
        let tokens: Vec<&str> = status.split_whitespace().collect();
        match tokens.as_slice() {
            ["OK", "PONG"] => Ok(Response::Pong),
            ["OK", "BYE"] => Ok(Response::Bye),
            ["OK", "STORED"] => Ok(Response::Stored),
            ["OK", "STATS"] => Ok(Response::Stats(body.to_string())),
            ["OK", "ARTIFACT", key] => {
                let key = key
                    .strip_prefix("key=")
                    .and_then(|k| k.parse().ok())
                    .ok_or_else(|| format!("bad key field '{key}'"))?;
                Ok(Response::Artifact { key, text: body.to_string() })
            }
            ["OK", "DIGEST", count] => {
                let count: usize = count
                    .strip_prefix("count=")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad count field '{count}'"))?;
                let mut keys = Vec::with_capacity(count.min(1 << 16));
                for line in body.lines().filter(|l| !l.is_empty()) {
                    keys.push(line.parse().map_err(|_| format!("bad digest key '{line}'"))?);
                }
                if keys.len() != count {
                    return Err(format!(
                        "digest declared {count} keys but the body carries {}",
                        keys.len()
                    ));
                }
                Ok(Response::Digest(keys))
            }
            ["OK", "SYNCED", pulled, failed, peers] => {
                let pulled = pulled
                    .strip_prefix("pulled=")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad pulled field '{pulled}'"))?;
                let failed = failed
                    .strip_prefix("failed=")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad failed field '{failed}'"))?;
                let peers = peers
                    .strip_prefix("peers=")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad peers field '{peers}'"))?;
                Ok(Response::Synced { pulled, failed, peers })
            }
            ["OK", "DRAINED", node, draining] => {
                let node = node
                    .strip_prefix("node=")
                    .ok_or_else(|| format!("bad node field '{node}'"))?
                    .to_string();
                let draining = draining
                    .strip_prefix("draining=")
                    .and_then(|b| b.parse().ok())
                    .ok_or_else(|| format!("bad draining field '{draining}'"))?;
                Ok(Response::Drained { node, draining })
            }
            ["OK", outcome, key, launches] => {
                let outcome = Outcome::from_str_token(outcome)
                    .ok_or_else(|| format!("unknown outcome '{outcome}'"))?;
                let key = key
                    .strip_prefix("key=")
                    .and_then(|k| k.parse().ok())
                    .ok_or_else(|| format!("bad key field '{key}'"))?;
                let launches = launches
                    .strip_prefix("launches=")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad launches field '{launches}'"))?;
                Ok(Response::Schedule(ScheduleResponse {
                    outcome,
                    key,
                    launches,
                    text: body.to_string(),
                }))
            }
            ["ERR", code, rest @ ..] => {
                Ok(Response::Err(SvcError::from_code(code, &rest.join(" "))))
            }
            _ => Err(format!("malformed status line '{status}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::CacheKey;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frames_carry_the_version_byte() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf, b"15\nhello", "version byte, length, newline, payload");
    }

    #[test]
    fn foreign_version_frames_are_consumed_and_reported() {
        // A well-formed version-2 frame: its payload must be consumed (the
        // stream stays framed for the error reply) and the error typed.
        let mut r = Cursor::new(b"25\nhello15\nworld".to_vec());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported, "{err}");
        assert!(err.to_string().contains("version 2"), "{err}");
        // The next (version-1) frame on the same stream still decodes.
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"world");
    }

    #[test]
    fn malformed_frames_are_rejected() {
        for bad in ["x\nzz", "1\nab", "1x5\nab", "199999999999999999999999\n", "\n"] {
            let mut r = Cursor::new(bad.as_bytes().to_vec());
            assert!(read_frame(&mut r).is_err(), "{bad:?} should be rejected");
        }
        // Oversized declared length.
        let mut r = Cursor::new(format!("1{}\n", MAX_FRAME + 1).into_bytes());
        assert!(read_frame(&mut r).is_err());
        // Oversized write.
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME + 1]).is_err());
    }

    #[test]
    fn decoder_reassembles_frames_from_arbitrary_chunking() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first frame").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"second, longer frame with\nnewlines\n").unwrap();
        for chunk in [1usize, 2, 3, 7, wire.len()] {
            let mut dec = FrameDecoder::new();
            let mut events = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.feed(piece, &mut events).unwrap();
            }
            assert_eq!(
                events,
                vec![
                    DecodeEvent::Frame(b"first frame".to_vec()),
                    DecodeEvent::Frame(Vec::new()),
                    DecodeEvent::Frame(b"second, longer frame with\nnewlines\n".to_vec()),
                ],
                "chunk size {chunk}"
            );
            assert!(!dec.mid_frame(), "decoder back at a frame boundary");
        }
    }

    #[test]
    fn decoder_flags_mid_frame_and_foreign_versions() {
        let mut dec = FrameDecoder::new();
        let mut events = Vec::new();
        assert!(!dec.mid_frame());
        dec.feed(b"1", &mut events).unwrap();
        assert!(dec.mid_frame(), "version byte consumed");
        dec.feed(b"5\nhel", &mut events).unwrap();
        assert!(dec.mid_frame(), "payload incomplete");
        assert_eq!(dec.payload_wanted(), Some(2));
        dec.feed(b"lo", &mut events).unwrap();
        assert_eq!(events, vec![DecodeEvent::Frame(b"hello".to_vec())]);
        assert!(!dec.mid_frame());

        events.clear();
        dec.feed(b"73\nxyz", &mut events).unwrap();
        assert_eq!(events, vec![DecodeEvent::BadVersion { got: 7 }]);
        assert!(!dec.mid_frame(), "foreign frame fully consumed");
    }

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Schedule(ScheduleRequest {
                workload: WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 2 },
                gpu_mhz: 1324.0,
                mem_mhz: 5010.0,
                deadline_ms: Some(250),
            }),
            Request::Schedule(ScheduleRequest::new(WorkloadSpec::OptFlow {
                size: 512,
                iters: 30,
                levels: 3,
            })),
            Request::Fetch(CacheKey { hi: 0xfeed, lo: 0xbeef }),
            Request::Put {
                key: CacheKey { hi: 1, lo: 2 },
                text: "# schedule\nlaunch k0: all\n".to_string(),
            },
            Request::Digest,
            Request::Sync,
            Request::Drain { node: "127.0.0.1:4100".into(), on: true },
            Request::Drain { node: "127.0.0.1:4100".into(), on: false },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req, "{}", req.to_line());
        }
        // `DRAIN <addr> on` is accepted as the explicit spelling.
        assert_eq!(
            Request::parse_line("DRAIN 10.0.0.1:4100 on").unwrap(),
            Request::Drain { node: "10.0.0.1:4100".into(), on: true }
        );
    }

    #[test]
    fn put_body_is_byte_exact() {
        let text = "line one\n\nline three with  spaces\n".to_string();
        let req = Request::Put { key: CacheKey { hi: 9, lo: 9 }, text: text.clone() };
        let Request::Put { text: back, .. } = Request::decode(&req.encode()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(back, text);
    }

    #[test]
    fn schedule_request_defaults_apply() {
        let req = Request::parse_line("SCHEDULE optflow size=64 iters=3 levels=2").unwrap();
        let Request::Schedule(req) = req else { panic!("not a schedule request") };
        assert_eq!(req.gpu_mhz, 1324.0);
        assert_eq!(req.mem_mhz, 5010.0);
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn bad_requests_are_rejected() {
        for bad in [
            "",
            "FETCH optflow",
            "FETCH",
            "PUT 0123456789abcdef0123456789abcdef", // no body
            "PUT xyz",
            "SCHEDULE mandelbrot",
            "SCHEDULE optflow freq=fast,5010",
            "SCHEDULE optflow freq=1324",
            "SCHEDULE optflow deadline_ms=soon",
            "PING extra",
            "STATS now",
            "DIGEST all",
            "SYNC now",
            "DRAIN",
            "DRAIN node1 maybe",
        ] {
            assert!(Request::parse_line(bad).is_err(), "{bad:?} should be rejected");
        }
        assert!(Request::decode(&[0xff, 0xfe]).is_err(), "non-UTF-8 rejected");
    }

    /// A reader that interleaves `WouldBlock` pauses between the chunks of
    /// a frame, like a socket with a read timeout receiving a slow sender.
    struct Trickle {
        chunks: Vec<Vec<u8>>,
        next: usize,
        blocked: bool,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.next >= self.chunks.len() {
                return Ok(0);
            }
            if !self.blocked {
                self.blocked = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
            }
            self.blocked = false;
            let chunk = &self.chunks[self.next];
            let n = chunk.len().min(buf.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            if n == chunk.len() {
                self.next += 1;
            } else {
                self.chunks[self.next] = chunk[n..].to_vec();
            }
            Ok(n)
        }
    }

    #[test]
    fn polled_reads_survive_mid_frame_timeouts_without_losing_bytes() {
        // "15\nhello" delivered one byte at a time, a WouldBlock before each.
        let bytes = b"15\nhello";
        let r =
            Trickle { chunks: bytes.iter().map(|&b| vec![b]).collect(), next: 0, blocked: false };
        let mut blocks = 0u32;
        let mut mid_frames = 0u32;
        let mut reader = std::io::BufReader::with_capacity(1, r);
        let payload = read_frame_polled(&mut reader, |mid, _e| {
            blocks += 1;
            if mid {
                mid_frames += 1;
            }
            Ok(())
        })
        .unwrap()
        .unwrap();
        assert_eq!(payload, b"hello");
        assert!(blocks >= bytes.len() as u32, "one block per byte at least: {blocks}");
        assert!(mid_frames >= blocks - 1, "all but the first block are mid-frame");
    }

    #[test]
    fn polled_reads_abort_when_the_callback_says_so() {
        let r = Trickle { chunks: vec![b"15\nhe".to_vec()], next: 0, blocked: false };
        let mut reader = std::io::BufReader::with_capacity(1, r);
        // Allow two blocks, then give up: simulates a stall deadline.
        let mut budget = 2u32;
        let err = read_frame_polled(&mut reader, |_mid, e| {
            if budget == 0 {
                return Err(e);
            }
            budget -= 1;
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn idempotency_flags() {
        assert!(Request::Ping.is_idempotent());
        assert!(Request::Stats.is_idempotent());
        assert!(Request::Fetch(CacheKey { hi: 1, lo: 2 }).is_idempotent());
        assert!(Request::Put { key: CacheKey { hi: 1, lo: 2 }, text: "x\n".into() }.is_idempotent());
        assert!(Request::Schedule(ScheduleRequest::new(WorkloadSpec::OptFlow {
            size: 64,
            iters: 3,
            levels: 2
        }))
        .is_idempotent());
        assert!(Request::Digest.is_idempotent());
        assert!(Request::Sync.is_idempotent());
        assert!(Request::Drain { node: "n".into(), on: true }.is_idempotent());
        assert!(!Request::Shutdown.is_idempotent());
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Schedule(ScheduleResponse {
                outcome: Outcome::Hit,
                key: CacheKey { hi: 0xdead_beef, lo: 0x1234 },
                launches: 7,
                text: "# schedule\nlaunch k0: all\n".to_string(),
            }),
            Response::Artifact {
                key: CacheKey { hi: 5, lo: 6 },
                text: "# schedule\nlaunch k1: all\n".to_string(),
            },
            Response::Stored,
            Response::Digest(vec![]),
            Response::Digest(vec![CacheKey { hi: 0xdead, lo: 0xbeef }, CacheKey { hi: 1, lo: 2 }]),
            Response::Synced { pulled: 12, failed: 1, peers: 2 },
            Response::Drained { node: "127.0.0.1:4100".into(), draining: true },
            Response::Drained { node: "127.0.0.1:4101".into(), draining: false },
            Response::Stats("{\"requests\": 3}".to_string()),
            Response::Pong,
            Response::Bye,
            Response::Err(SvcError::Shed),
            Response::Err(SvcError::DeadlineExceeded),
            Response::Err(SvcError::NotFound),
            Response::Err(SvcError::VersionMismatch { got: 2, expected: 1 }),
            Response::Err(SvcError::BadRequest("size must be in 16..=2048".into())),
            Response::Err(SvcError::Pipeline("tiling failed".into())),
            Response::Err(SvcError::Internal("injected fault: pipeline.schedule".into())),
            Response::Schedule(ScheduleResponse {
                outcome: Outcome::DegradedUntiled,
                key: CacheKey { hi: 3, lo: 4 },
                launches: 12,
                text: "# untiled\n".to_string(),
            }),
            Response::Schedule(ScheduleResponse {
                outcome: Outcome::PeerFill,
                key: CacheKey { hi: 8, lo: 9 },
                launches: 4,
                text: "# peer\n".to_string(),
            }),
        ];
        for resp in resps {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn digest_count_must_match_the_body() {
        let err =
            Response::decode(b"OK DIGEST count=2\n00000000000000000000000000000001").unwrap_err();
        assert!(err.contains("declared 2"), "{err}");
    }

    #[test]
    fn oversized_control_frames_are_discarded_not_buffered() {
        let declared = MAX_CONTROL_FRAME + 1;
        let mut wire = format!("{PROTO_VERSION}{declared}\n").into_bytes();
        let mut payload = b"PING ".to_vec();
        payload.resize(declared, b'x');
        wire.extend_from_slice(&payload);
        // A well-formed frame behind the oversized one must still decode:
        // the discard keeps the stream framed.
        write_frame(&mut wire, b"PING").unwrap();

        for chunk in [1usize, 7, wire.len()] {
            let mut dec = FrameDecoder::for_requests();
            let mut events = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.feed(piece, &mut events).unwrap();
            }
            assert_eq!(
                events,
                vec![
                    DecodeEvent::OversizedControl { verb: "PING".into(), declared },
                    DecodeEvent::Frame(b"PING".to_vec()),
                ],
                "chunk size {chunk}"
            );
            assert!(!dec.mid_frame(), "back at a frame boundary");
        }
    }

    #[test]
    fn bulk_verbs_are_exempt_from_the_control_budget() {
        let req = Request::Put {
            key: CacheKey { hi: 1, lo: 2 },
            text: "x".repeat(MAX_CONTROL_FRAME * 2),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let mut dec = FrameDecoder::for_requests();
        let mut events = Vec::new();
        dec.feed(&wire, &mut events).unwrap();
        let [DecodeEvent::Frame(payload)] = events.as_slice() else {
            panic!("expected exactly one frame, got {events:?}");
        };
        assert_eq!(Request::decode(payload).unwrap(), req);
    }

    #[test]
    fn in_budget_control_frames_pass_a_budgeted_decoder_untouched() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"STATS").unwrap();
        write_frame(&mut wire, b"DIGEST").unwrap();
        let mut dec = FrameDecoder::for_requests();
        let mut events = Vec::new();
        dec.feed(&wire, &mut events).unwrap();
        assert_eq!(
            events,
            vec![DecodeEvent::Frame(b"STATS".to_vec()), DecodeEvent::Frame(b"DIGEST".to_vec()),]
        );
    }

    #[test]
    fn schedule_response_body_is_byte_exact() {
        let text = "line one\n\nline three with  spaces\n".to_string();
        let resp = Response::Schedule(ScheduleResponse {
            outcome: Outcome::Miss,
            key: CacheKey { hi: 1, lo: 2 },
            launches: 1,
            text: text.clone(),
        });
        let Response::Schedule(back) = Response::decode(&resp.encode()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(back.text, text);
    }
}
