//! The wire protocol: length-prefixed frames carrying one-line requests
//! and text responses.
//!
//! A **frame** is the ASCII decimal byte length of the payload, a newline,
//! then exactly that many payload bytes. The header is human-typable and
//! the payload is the existing text formats (request lines, `.sched`
//! artifacts, metrics JSON), so a session can be driven or inspected with
//! standard tools.
//!
//! Request payloads are a single line:
//!
//! ```text
//! SCHEDULE optflow size=64 iters=3 levels=2 freq=1324,5010 deadline_ms=500
//! STATS
//! PING
//! SHUTDOWN
//! ```
//!
//! Response payloads are a status line plus an optional body:
//!
//! ```text
//! OK HIT key=<32 hex> launches=<n>   (body: the .sched text)
//! OK STATS                           (body: metrics JSON)
//! OK PONG
//! OK BYE
//! ERR <CODE> <message>
//! ```

use std::io::{self, BufRead, Write};

use crate::service::{Outcome, ScheduleRequest, ScheduleResponse, SvcError, WorkloadSpec};

/// Largest accepted frame payload (64 MiB) — far above any real schedule,
/// small enough that a malformed header cannot ask the server to allocate
/// unbounded memory.
pub const MAX_FRAME: usize = 64 << 20;

/// Longest accepted frame header (decimal digits before the newline).
const MAX_HEADER_DIGITS: usize = 20;

/// Writes one frame.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] when the payload exceeds [`MAX_FRAME`];
/// otherwise any transport error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME}-byte limit", payload.len()),
        ));
    }
    writeln!(w, "{}", payload.len())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean end-of-stream (EOF before the
/// first header byte).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for malformed or oversized headers and
/// for EOF mid-frame; otherwise any transport error (including
/// `WouldBlock`/`TimedOut` from a read timeout, which callers polling an
/// idle connection should treat as "no frame yet").
pub fn read_frame<R: BufRead>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    read_frame_polled(r, |_, e| Err(e))
}

/// Reads one frame from a stream with a read timeout, retrying timed-out
/// reads **without losing partial progress** — the piece [`read_frame`]
/// cannot offer, since a `WouldBlock` surfacing mid-header or mid-payload
/// abandons the bytes already consumed.
///
/// On every `WouldBlock`/`TimedOut` read, `on_block(mid_frame, err)` is
/// consulted: return `Ok(())` to retry the read (the socket's own read
/// timeout paces the polling), or `Err(..)` to abort with that error.
/// `mid_frame` is true once at least one byte of the current frame has
/// been consumed — the flag that separates "idle connection" (fine to
/// wait on indefinitely) from "stalled sender" (worth a deadline).
///
/// # Errors
///
/// As [`read_frame`], plus whatever `on_block` returns to abort.
pub fn read_frame_polled<R: BufRead>(
    r: &mut R,
    mut on_block: impl FnMut(bool, io::Error) -> io::Result<()>,
) -> io::Result<Option<Vec<u8>>> {
    let bad = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
    let mut header = Vec::with_capacity(MAX_HEADER_DIGITS);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if header.is_empty() {
                    return Ok(None);
                }
                return Err(bad("end of stream inside a frame header".into()));
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                on_block(!header.is_empty(), e)?;
                continue;
            }
            Err(e) => return Err(e),
        }
        if byte[0] == b'\n' {
            break;
        }
        if !byte[0].is_ascii_digit() || header.len() >= MAX_HEADER_DIGITS {
            return Err(bad(format!("malformed frame header byte 0x{:02x}", byte[0])));
        }
        header.push(byte[0]);
    }
    if header.is_empty() {
        return Err(bad("empty frame header".into()));
    }
    let len: usize = std::str::from_utf8(&header)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable frame length".into()))?;
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit")));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(bad(format!("short frame ({len} bytes promised, {filled} received)")))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                on_block(true, e)?;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Request a schedule.
    Schedule(ScheduleRequest),
    /// Request the metrics registry as JSON.
    Stats,
    /// Liveness check.
    Ping,
    /// Ask the server to stop accepting connections and shut down.
    Shutdown,
}

impl Request {
    /// Whether retrying this request after a transport failure is safe.
    /// Scheduling is a pure function of its inputs and `STATS`/`PING` are
    /// read-only, so all three are idempotent; `SHUTDOWN` is not — a
    /// retry could reach (and kill) a freshly restarted server.
    pub fn is_idempotent(&self) -> bool {
        match self {
            Request::Schedule(_) | Request::Stats | Request::Ping => true,
            Request::Shutdown => false,
        }
    }

    /// Renders the request line.
    pub fn to_line(&self) -> String {
        match self {
            Request::Schedule(req) => {
                let mut line =
                    format!("SCHEDULE {} freq={},{}", req.workload, req.gpu_mhz, req.mem_mhz);
                if let Some(ms) = req.deadline_ms {
                    line.push_str(&format!(" deadline_ms={ms}"));
                }
                line
            }
            Request::Stats => "STATS".into(),
            Request::Ping => "PING".into(),
            Request::Shutdown => "SHUTDOWN".into(),
        }
    }

    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        self.to_line().into_bytes()
    }

    /// Parses a request line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed line.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.split_first() {
            Some((&"SCHEDULE", rest)) => {
                let mut gpu_mhz = None;
                let mut mem_mhz = None;
                let mut deadline_ms = None;
                let mut workload_tokens = Vec::new();
                for tok in rest {
                    if let Some(v) = tok.strip_prefix("freq=") {
                        let (g, m) = v
                            .split_once(',')
                            .ok_or_else(|| format!("freq must be gpu,mem MHz, got '{v}'"))?;
                        gpu_mhz = Some(g.parse().map_err(|_| format!("bad gpu MHz in '{tok}'"))?);
                        mem_mhz = Some(m.parse().map_err(|_| format!("bad mem MHz in '{tok}'"))?);
                    } else if let Some(v) = tok.strip_prefix("deadline_ms=") {
                        deadline_ms =
                            Some(v.parse().map_err(|_| format!("bad deadline in '{tok}'"))?);
                    } else {
                        workload_tokens.push(*tok);
                    }
                }
                let workload = WorkloadSpec::parse(&workload_tokens)?;
                let defaults = ScheduleRequest::new(workload);
                Ok(Request::Schedule(ScheduleRequest {
                    workload,
                    gpu_mhz: gpu_mhz.unwrap_or(defaults.gpu_mhz),
                    mem_mhz: mem_mhz.unwrap_or(defaults.mem_mhz),
                    deadline_ms,
                }))
            }
            Some((&"STATS", [])) => Ok(Request::Stats),
            Some((&"PING", [])) => Ok(Request::Ping),
            Some((&"SHUTDOWN", [])) => Ok(Request::Shutdown),
            Some((&verb, _)) => Err(format!("unknown or malformed request '{verb}'")),
            None => Err("empty request".into()),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed payload.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let line = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
        Self::parse_line(line.trim_end_matches(['\r', '\n']))
    }
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A served schedule.
    Schedule(ScheduleResponse),
    /// The metrics registry as JSON.
    Stats(String),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Acknowledgement of [`Request::Shutdown`].
    Bye,
    /// The request failed.
    Err(SvcError),
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Schedule(r) => format!(
                "OK {} key={} launches={}\n{}",
                r.outcome.as_str(),
                r.key,
                r.launches,
                r.text
            )
            .into_bytes(),
            Response::Stats(json) => format!("OK STATS\n{json}").into_bytes(),
            Response::Pong => b"OK PONG".to_vec(),
            Response::Bye => b"OK BYE".to_vec(),
            Response::Err(e) => {
                let msg = match e {
                    SvcError::BadRequest(m) | SvcError::Pipeline(m) | SvcError::Internal(m) => {
                        m.as_str()
                    }
                    _ => "",
                };
                // The message must stay on the status line.
                let msg = msg.replace('\n', " ");
                format!("ERR {} {msg}", e.code()).trim_end().to_string().into_bytes()
            }
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed payload.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "response is not UTF-8".to_string())?;
        let (status, body) = match text.split_once('\n') {
            Some((s, b)) => (s, b),
            None => (text, ""),
        };
        let tokens: Vec<&str> = status.split_whitespace().collect();
        match tokens.as_slice() {
            ["OK", "PONG"] => Ok(Response::Pong),
            ["OK", "BYE"] => Ok(Response::Bye),
            ["OK", "STATS"] => Ok(Response::Stats(body.to_string())),
            ["OK", outcome, key, launches] => {
                let outcome = Outcome::from_str_token(outcome)
                    .ok_or_else(|| format!("unknown outcome '{outcome}'"))?;
                let key = key
                    .strip_prefix("key=")
                    .and_then(|k| k.parse().ok())
                    .ok_or_else(|| format!("bad key field '{key}'"))?;
                let launches = launches
                    .strip_prefix("launches=")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad launches field '{launches}'"))?;
                Ok(Response::Schedule(ScheduleResponse {
                    outcome,
                    key,
                    launches,
                    text: body.to_string(),
                }))
            }
            ["ERR", code, rest @ ..] => {
                Ok(Response::Err(SvcError::from_code(code, &rest.join(" "))))
            }
            _ => Err(format!("malformed status line '{status}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::CacheKey;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_are_rejected() {
        for bad in ["x\nzz", "5\nab", "99999999999999999999999\n", "\n"] {
            let mut r = Cursor::new(bad.as_bytes().to_vec());
            assert!(read_frame(&mut r).is_err(), "{bad:?} should be rejected");
        }
        // Oversized declared length.
        let mut r = Cursor::new(format!("{}\n", MAX_FRAME + 1).into_bytes());
        assert!(read_frame(&mut r).is_err());
        // Oversized write.
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME + 1]).is_err());
    }

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Schedule(ScheduleRequest {
                workload: WorkloadSpec::OptFlow { size: 64, iters: 3, levels: 2 },
                gpu_mhz: 1324.0,
                mem_mhz: 5010.0,
                deadline_ms: Some(250),
            }),
            Request::Schedule(ScheduleRequest::new(WorkloadSpec::OptFlow {
                size: 512,
                iters: 30,
                levels: 3,
            })),
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req, "{}", req.to_line());
        }
    }

    #[test]
    fn schedule_request_defaults_apply() {
        let req = Request::parse_line("SCHEDULE optflow size=64 iters=3 levels=2").unwrap();
        let Request::Schedule(req) = req else { panic!("not a schedule request") };
        assert_eq!(req.gpu_mhz, 1324.0);
        assert_eq!(req.mem_mhz, 5010.0);
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn bad_requests_are_rejected() {
        for bad in [
            "",
            "FETCH optflow",
            "SCHEDULE mandelbrot",
            "SCHEDULE optflow freq=fast,5010",
            "SCHEDULE optflow freq=1324",
            "SCHEDULE optflow deadline_ms=soon",
            "PING extra",
            "STATS now",
        ] {
            assert!(Request::parse_line(bad).is_err(), "{bad:?} should be rejected");
        }
        assert!(Request::decode(&[0xff, 0xfe]).is_err(), "non-UTF-8 rejected");
    }

    /// A reader that interleaves `WouldBlock` pauses between the chunks of
    /// a frame, like a socket with a read timeout receiving a slow sender.
    struct Trickle {
        chunks: Vec<Vec<u8>>,
        next: usize,
        blocked: bool,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.next >= self.chunks.len() {
                return Ok(0);
            }
            if !self.blocked {
                self.blocked = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
            }
            self.blocked = false;
            let chunk = &self.chunks[self.next];
            let n = chunk.len().min(buf.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            if n == chunk.len() {
                self.next += 1;
            } else {
                self.chunks[self.next] = chunk[n..].to_vec();
            }
            Ok(n)
        }
    }

    #[test]
    fn polled_reads_survive_mid_frame_timeouts_without_losing_bytes() {
        // "5\nhello" delivered one byte at a time, a WouldBlock before each.
        let bytes = b"5\nhello";
        let r =
            Trickle { chunks: bytes.iter().map(|&b| vec![b]).collect(), next: 0, blocked: false };
        let mut blocks = 0u32;
        let mut mid_frames = 0u32;
        let mut reader = std::io::BufReader::with_capacity(1, r);
        let payload = read_frame_polled(&mut reader, |mid, _e| {
            blocks += 1;
            if mid {
                mid_frames += 1;
            }
            Ok(())
        })
        .unwrap()
        .unwrap();
        assert_eq!(payload, b"hello");
        assert!(blocks >= bytes.len() as u32, "one block per byte at least: {blocks}");
        assert!(mid_frames >= blocks - 1, "all but the first block are mid-frame");
    }

    #[test]
    fn polled_reads_abort_when_the_callback_says_so() {
        let r = Trickle { chunks: vec![b"5\nhe".to_vec()], next: 0, blocked: false };
        let mut reader = std::io::BufReader::with_capacity(1, r);
        // Allow two blocks, then give up: simulates a stall deadline.
        let mut budget = 2u32;
        let err = read_frame_polled(&mut reader, |_mid, e| {
            if budget == 0 {
                return Err(e);
            }
            budget -= 1;
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn idempotency_flags() {
        assert!(Request::Ping.is_idempotent());
        assert!(Request::Stats.is_idempotent());
        assert!(Request::Schedule(ScheduleRequest::new(WorkloadSpec::OptFlow {
            size: 64,
            iters: 3,
            levels: 2
        }))
        .is_idempotent());
        assert!(!Request::Shutdown.is_idempotent());
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Schedule(ScheduleResponse {
                outcome: Outcome::Hit,
                key: CacheKey { hi: 0xdead_beef, lo: 0x1234 },
                launches: 7,
                text: "# schedule\nlaunch k0: all\n".to_string(),
            }),
            Response::Stats("{\"requests\": 3}".to_string()),
            Response::Pong,
            Response::Bye,
            Response::Err(SvcError::Shed),
            Response::Err(SvcError::DeadlineExceeded),
            Response::Err(SvcError::BadRequest("size must be in 16..=2048".into())),
            Response::Err(SvcError::Pipeline("tiling failed".into())),
            Response::Err(SvcError::Internal("injected fault: pipeline.schedule".into())),
            Response::Schedule(ScheduleResponse {
                outcome: Outcome::DegradedUntiled,
                key: CacheKey { hi: 3, lo: 4 },
                launches: 12,
                text: "# untiled\n".to_string(),
            }),
        ];
        for resp in resps {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn schedule_response_body_is_byte_exact() {
        let text = "line one\n\nline three with  spaces\n".to_string();
        let resp = Response::Schedule(ScheduleResponse {
            outcome: Outcome::Miss,
            key: CacheKey { hi: 1, lo: 2 },
            launches: 1,
            text: text.clone(),
        });
        let Response::Schedule(back) = Response::decode(&resp.encode()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(back.text, text);
    }
}
