//! Seeded adversarial DAG fuzzing for the full KTILER pipeline.
//!
//! [`gen_app`] draws a random application from a grammar over the kernel
//! template families: stencils, elementwise maps, in-place updates,
//! reductions, scans, transposes, bitonic steps, matmuls, value-dependent
//! kernels (histogram, warp) and host transfers, over a small shared
//! buffer pool so read-side aliasing, ping-pong reuse, mixed 1-D/2-D
//! views of the same buffer and WAR/WAW hazards arise constantly. The
//! grammar only emits *valid* GPU programs: a kernel's writes never alias
//! another of its read buffers except same-index in-place roles, so the
//! result is independent of block execution order — exactly the property
//! the scheduler is allowed to rely on.
//!
//! [`run_case`] drives one seed through the pipeline with a differential
//! oracle at every stage:
//!
//! 1. `analyze_fast` (structural/affine fast paths) must equal
//!    `analyze_reference_with` (record everything) — order, per-node
//!    block traces and the block dependency graph.
//! 2. `ktiler_schedule` must produce a schedule that passes both
//!    [`Schedule::validate`] and the independent [`verify_schedule`]
//!    checker with zero errors.
//! 3. The timing executor must accept the schedule.
//! 4. Functional replay of the tiled schedule must leave every byte of
//!    device memory identical to replaying the untiled baseline.
//!
//! Everything is a pure function of the seed, so any failure is
//! reproducible from one `u64`.

use crate::app::{random_payload, ZooApp};
use crate::exec::{memory_image, run_schedule_functionally};
use gpu_sim::{Buffer, BufferId, DeviceMemory, FreqConfig, GpuConfig, SplitMix64};
use kernels::compute::{
    BitonicStep, Convolution2D, FillSeq, HeatStep, Histogram, MatMul, ReduceSum, Saxpy, ScanStep,
    Transpose,
};
use kernels::image::{AddField, Derivatives, Downscale, GradThreshold, Upscale, WarpImage};
use kernels::pde::{PoissonSmooth, Prolong, Residual};
use kgraph::{AppGraph, GraphBuilder, GraphTrace};
use ktiler::{
    calibrate, cluster_tile, execute_schedule, ktiler_schedule, singleton_tiling, verify_schedule,
    Calibration, CalibrationConfig, KtilerConfig, Partition, Schedule, TileParams,
};
use std::fmt;

/// A divergence found by the differential oracle: the pipeline stage
/// that disagreed plus a human-readable detail. Reproduce with
/// [`run_case`]`(seed)`.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The seed that produced the failing DAG.
    pub seed: u64,
    /// Pipeline stage that diverged (`analyze`, `schedule`, `validate`,
    /// `verify`, `execute` or `output`).
    pub stage: &'static str,
    /// What exactly disagreed.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed {:#x} [{}]: {}", self.seed, self.stage, self.detail)
    }
}

/// Summary of one clean case.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    /// Nodes in the generated graph.
    pub nodes: usize,
    /// Kernel nodes (the rest are transfers).
    pub kernels: usize,
    /// Launches in the tiled schedule.
    pub launches: usize,
    /// Launches belonging to tiled (multi-launch) nodes.
    pub tiled_launches: usize,
    /// Merges Algorithm 1 accepted.
    pub merges_accepted: usize,
    /// Launches in the forced-tiling pass belonging to split nodes.
    pub forced_tiled_launches: usize,
}

/// Image shapes the generator draws from: all-even extents (downscale
/// needs them) spanning 1×1 to 4×8 grids of 32×8 pixel blocks. The
/// larger shapes give nodes enough blocks (12–32) for Algorithm 2 to
/// form multiple groups under a shrunken capacity — without them every
/// cluster either fits whole or cannot tile at all, and the interleaved
/// sub-launch paths would go unexercised.
const DIMS_POOL: [(u32, u32); 11] = [
    (16, 8),
    (32, 8),
    (32, 16),
    (24, 16),
    (48, 16),
    (64, 16),
    (40, 24),
    (32, 32),
    (96, 32),
    (64, 64),
    (128, 32),
];

fn pick_buf(rng: &mut SplitMix64, bufs: &[Buffer]) -> Buffer {
    bufs[rng.gen_range_u64(0, bufs.len() as u64) as usize]
}

/// Draws a buffer whose id is not in `exclude`. The pool is always
/// larger than any exclusion list the grammar uses, so the rejection
/// loop terminates (and stays deterministic: each rejection consumes
/// rng state in a seed-reproducible way).
fn pick_buf_not(rng: &mut SplitMix64, bufs: &[Buffer], exclude: &[BufferId]) -> Buffer {
    loop {
        let b = pick_buf(rng, bufs);
        if !exclude.contains(&b.id) {
            return b;
        }
    }
}

/// A 1-D length ≤ `cap`, biased toward block-boundary edge cases.
fn pick_len(rng: &mut SplitMix64, cap: u32) -> u32 {
    let pool = [1u32, 2, 31, 32, 64, 255, 256, 257, 300, 512, 1000, cap];
    let mut n = pool[rng.gen_range_u64(0, pool.len() as u64) as usize];
    if n > cap {
        n = cap;
    }
    n
}

/// Generates the seeded random application. Pure in the seed: the same
/// seed always yields the same graph, the same buffer addresses and the
/// same upload payloads.
pub fn gen_app(seed: u64) -> ZooApp {
    let mut rng = SplitMix64::new(seed ^ 0x5eed_2005_cafe_f00d);
    let (w, h) = DIMS_POOL[rng.gen_range_u64(0, DIMS_POOL.len() as u64) as usize];
    let cap = w * h;
    let nbufs = rng.gen_range_u64(5, 10) as usize;

    let mut mem = DeviceMemory::new();
    let bufs: Vec<Buffer> =
        (0..nbufs).map(|i| mem.alloc_f32(cap as u64, &format!("z{i}"))).collect();

    let mut b = GraphBuilder::new();

    // Initial state: most buffers get seeded uploads, some a FillSeq
    // kernel, some stay at their zero-initialized allocation.
    for (i, &buf) in bufs.iter().enumerate() {
        match rng.gen_range_u64(0, 10) {
            0..=6 => {
                b.upload(buf, random_payload(seed ^ (0xA000 + i as u64), cap as u64));
            }
            7 => {
                let n = pick_len(&mut rng, cap);
                let k = FillSeq::new(buf, n, rand_small(&mut rng), rand_small(&mut rng));
                b.kernel(Box::new(k), &[], &[buf]);
            }
            _ => {}
        }
    }

    let nops = rng.gen_range_u64(5, 23);
    for op in 0..nops {
        emit_op(&mut rng, &mut b, &bufs, w, h, cap, seed ^ (0xB000 + op));
    }

    // Read back a few buffers.
    for _ in 0..rng.gen_range_u64(1, 4) {
        b.download(pick_buf(&mut rng, &bufs));
    }

    let outputs = bufs.clone();
    ZooApp { name: format!("fuzz_{seed:#018x}"), graph: b.finish(), mem, outputs }
}

/// A small, always-finite constant.
fn rand_small(rng: &mut SplitMix64) -> f32 {
    (rng.next_u32() % 2000) as f32 / 1000.0 - 1.0
}

fn emit_op(
    rng: &mut SplitMix64,
    b: &mut GraphBuilder,
    bufs: &[Buffer],
    w: u32,
    h: u32,
    cap: u32,
    opseed: u64,
) {
    match rng.gen_range_u64(0, 21) {
        0 => {
            // Heat diffusion step: 5-point stencil, ping-pong.
            let src = pick_buf(rng, bufs);
            let dst = pick_buf_not(rng, bufs, &[src.id]);
            let k = HeatStep::new(src, dst, w, h, 0.2);
            b.kernel(Box::new(k), &[src], &[dst]);
        }
        1 => {
            // Box blur, 3 or 5 taps.
            let taps = if rng.gen_range_u64(0, 2) == 0 { 3 } else { 5 };
            let src = pick_buf(rng, bufs);
            let dst = pick_buf_not(rng, bufs, &[src.id]);
            let k = Convolution2D::new(src, dst, w, h, Convolution2D::box_filter(taps), taps);
            b.kernel(Box::new(k), &[src], &[dst]);
        }
        2 => {
            // In-place accumulate: acc += inc, same-index.
            let inc = pick_buf(rng, bufs);
            let acc = pick_buf_not(rng, bufs, &[inc.id]);
            let k = AddField::new(acc, inc, w, h);
            b.kernel(Box::new(k), &[acc, inc], &[acc]);
        }
        3 => {
            // Derivatives; the two frame roles may alias (a structurally
            // aliased instance OffsetMap must refuse to rebase), and the
            // three outputs may alias each other — but never an input.
            let i0 = pick_buf(rng, bufs);
            let i1w = if rng.gen_range_u64(0, 4) == 0 { i0 } else { pick_buf(rng, bufs) };
            let inputs = [i0.id, i1w.id];
            let ix = pick_buf_not(rng, bufs, &inputs);
            let iy = pick_buf_not(rng, bufs, &inputs);
            let it = pick_buf_not(rng, bufs, &inputs);
            let k = Derivatives::new(i0, i1w, ix, iy, it, w, h);
            b.kernel(Box::new(k), &[i0, i1w], &[ix, iy, it]);
        }
        4 => {
            // Gradient threshold; the gradients may alias each other.
            let ix = pick_buf(rng, bufs);
            let iy = if rng.gen_range_u64(0, 3) == 0 { ix } else { pick_buf(rng, bufs) };
            let mask = pick_buf_not(rng, bufs, &[ix.id, iy.id]);
            let k = GradThreshold::new(ix, iy, mask, w, h, rand_small(rng).abs());
            b.kernel(Box::new(k), &[ix, iy], &[mask]);
        }
        5 => {
            // Downscale: reads w×h, writes (w/2)×(h/2).
            let src = pick_buf(rng, bufs);
            let dst = pick_buf_not(rng, bufs, &[src.id]);
            let k = Downscale::new(src, dst, w, h);
            b.kernel(Box::new(k), &[src], &[dst]);
        }
        6 => {
            // Upscale from the half-resolution view back to full size.
            let src = pick_buf(rng, bufs);
            let dst = pick_buf_not(rng, bufs, &[src.id]);
            let k = Upscale::new(src, dst, w / 2, h / 2, 2.0);
            b.kernel(Box::new(k), &[src], &[dst]);
        }
        7 => {
            // Saxpy: y += a·x in place, 1-D view of the pool.
            let x = pick_buf(rng, bufs);
            let y = pick_buf_not(rng, bufs, &[x.id]);
            let n = pick_len(rng, cap);
            let k = Saxpy::new(x, y, rand_small(rng), n);
            b.kernel(Box::new(k), &[x, y], &[y]);
        }
        8 => {
            // Block-sum reduction; partials may land in any other buffer.
            let src = pick_buf(rng, bufs);
            let partials = pick_buf_not(rng, bufs, &[src.id]);
            let n = pick_len(rng, cap);
            let k = ReduceSum::new(src, partials, n);
            b.kernel(Box::new(k), &[src], &[partials]);
        }
        9 => {
            // One Hillis–Steele scan step.
            let src = pick_buf(rng, bufs);
            let dst = pick_buf_not(rng, bufs, &[src.id]);
            let n = pick_len(rng, cap).max(2);
            let offset = rng.gen_range_u64(1, n as u64) as u32;
            let k = ScanStep::new(src, dst, n, offset);
            b.kernel(Box::new(k), &[src], &[dst]);
        }
        10 => {
            // Transpose: the classic strided-write footprint.
            let src = pick_buf(rng, bufs);
            let dst = pick_buf_not(rng, bufs, &[src.id]);
            let k = Transpose::new(src, dst, w, h);
            b.kernel(Box::new(k), &[src], &[dst]);
        }
        11 => {
            // One bitonic compare-exchange step, in place.
            let data = pick_buf(rng, bufs);
            let log2 = 31 - cap.next_power_of_two().min(cap).leading_zeros();
            let n = 1u32 << rng.gen_range_u64(1, log2 as u64 + 1);
            let a = rng.gen_range_u64(1, n.trailing_zeros() as u64 + 1);
            let k_arg = 1u32 << a;
            let j = 1u32 << rng.gen_range_u64(0, a);
            let k = BitonicStep::new(data, n, k_arg, j);
            b.kernel(Box::new(k), &[data], &[data]);
        }
        12 => {
            // Matmul over small operands carved from pool buffers; the
            // two inputs may alias, the output may not alias an input.
            let max_dim = if cap >= 256 { 4 } else { 3 };
            let dims = [2u32, 4, 8, 16];
            let m = dims[rng.gen_range_u64(0, max_dim) as usize];
            let kk = dims[rng.gen_range_u64(0, max_dim) as usize];
            let n = dims[rng.gen_range_u64(0, max_dim) as usize];
            let a = pick_buf(rng, bufs);
            let bm = if rng.gen_range_u64(0, 4) == 0 { a } else { pick_buf(rng, bufs) };
            let c = pick_buf_not(rng, bufs, &[a.id, bm.id]);
            let k = MatMul::new(a, bm, c, m, kk, n);
            b.kernel(Box::new(k), &[a, bm], &[c]);
        }
        13 => {
            // Histogram: value-dependent atomics, never tileable.
            let src = pick_buf(rng, bufs);
            let hist = pick_buf_not(rng, bufs, &[src.id]);
            let n = pick_len(rng, cap);
            let bins = rng.gen_range_u64(1, 65) as u32;
            let k = Histogram::new(src, hist, n, bins);
            b.kernel(Box::new(k), &[src, hist], &[hist]);
        }
        14 => {
            // Warp: data-dependent gather (clamped), recorded functionally.
            let src = pick_buf(rng, bufs);
            let u = pick_buf(rng, bufs);
            let v = pick_buf(rng, bufs);
            let dst = pick_buf_not(rng, bufs, &[src.id, u.id, v.id]);
            let k = WarpImage::new(src, u, v, dst, w, h);
            b.kernel(Box::new(k), &[src, u, v], &[dst]);
        }
        15 => {
            // Damped Jacobi smoothing; the RHS may alias the output
            // (same-index read) but never the stencil input.
            let u_in = pick_buf(rng, bufs);
            let f = pick_buf(rng, bufs);
            let u_out = pick_buf_not(rng, bufs, &[u_in.id]);
            let k = PoissonSmooth::new(u_in, f, u_out, w, h, 1.0, 0.9);
            b.kernel(Box::new(k), &[u_in, f], &[u_out]);
        }
        16 => {
            // Residual: r may alias f (same-index) but never u.
            let u = pick_buf(rng, bufs);
            let f = pick_buf(rng, bufs);
            let r = pick_buf_not(rng, bufs, &[u.id]);
            let k = Residual::new(u, f, r, w, h, 1.0);
            b.kernel(Box::new(k), &[u, f], &[r]);
        }
        17 => {
            // Prolongation from the half-resolution view.
            let src = pick_buf(rng, bufs);
            let dst = pick_buf_not(rng, bufs, &[src.id]);
            let k = Prolong::new(src, dst, w / 2, h / 2);
            b.kernel(Box::new(k), &[src], &[dst]);
        }
        18 => {
            // Fill a prefix with an affine ramp.
            let dst = pick_buf(rng, bufs);
            let n = pick_len(rng, cap);
            let k = FillSeq::new(dst, n, rand_small(rng), rand_small(rng));
            b.kernel(Box::new(k), &[], &[dst]);
        }
        19 => {
            // Mid-graph re-upload: flushes verifier windows, creates
            // WAR/WAW pressure against everything emitted so far.
            let dst = pick_buf(rng, bufs);
            b.upload(dst, random_payload(opseed, cap as u64));
        }
        _ => {
            // Mid-graph read-back.
            b.download(pick_buf(rng, bufs));
        }
    }
}

/// Builds an adversarial *forced* tiled schedule: a seeded random valid
/// partition, every cluster tiled by Algorithm 2 (`cluster_tile`) at the
/// given (shrunken) capacity, stitched in cluster topological order —
/// with no profitability gate.
///
/// The cost-driven scheduler almost never emits interleaved sub-launches
/// at fuzz scale: these graphs have 1–6 blocks per node, so per-launch
/// overhead in the calibrated tables dominates any cache benefit and
/// Algorithm 1 rejects every multi-group tiling as unprofitable. That
/// would leave the sub-launch interleaving paths — exactly where
/// dependency-ordering bugs live — untested. Correctness must not depend
/// on profitability, so this pass removes the gate.
pub fn forced_tiled_schedule(
    seed: u64,
    g: &AppGraph,
    gt: &GraphTrace,
    cal: &Calibration,
    tile: &TileParams,
) -> Schedule {
    let mut rng = SplitMix64::new(seed ^ 0xF02C_ED71_1E5C_0DE5);
    let mut partition = Partition::singletons(g);
    let mut edges: Vec<u32> = (0..g.num_edges() as u32).collect();
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range_u64(0, i as u64 + 1) as usize;
        edges.swap(i, j);
    }
    for e in edges {
        // Skip a quarter of the edges so some singleton clusters survive
        // (single-node clusters still split under the small capacity,
        // covering sub-launched standalone kernels).
        if rng.gen_range_u64(0, 4) == 0 {
            continue;
        }
        let edge = g.edge(kgraph::EdgeId(e));
        let ca = partition.cluster_of(edge.src);
        let cb = partition.cluster_of(edge.dst);
        if ca == cb {
            continue;
        }
        let merged = partition.merged(ca, cb);
        if merged.is_valid(g) {
            partition = merged;
        }
    }
    let order = partition.cluster_order(g).expect("valid partitions always have a cluster order");
    let mut schedule = Schedule::default();
    for c in order {
        let members = partition.members(c);
        match cluster_tile(members, g, gt, cal, tile) {
            Some(t) => schedule.launches.extend(t.launches),
            None => {
                // Untileable at this capacity (a minimal dependency-closed
                // group already overflows): full launches in topo order.
                for &v in gt.order.iter().filter(|v| members.contains(v)) {
                    schedule.launches.extend(singleton_tiling(v, g, cal, tile).launches);
                }
            }
        }
    }
    schedule
}

/// Compares two analyzer results field by field; returns the first
/// difference as a detail string.
fn compare_traces(fast: &kgraph::GraphTrace, reference: &kgraph::GraphTrace) -> Result<(), String> {
    if fast.order != reference.order {
        return Err("topological orders differ".into());
    }
    if fast.nodes.len() != reference.nodes.len() {
        return Err(format!("node counts {} vs {}", fast.nodes.len(), reference.nodes.len()));
    }
    for (i, (a, r)) in fast.nodes.iter().zip(&reference.nodes).enumerate() {
        if *a.blocks != *r.blocks {
            return Err(format!("node {i}: block traces differ (fast vs reference)"));
        }
    }
    if fast.deps != reference.deps {
        return Err(format!(
            "block dependency graphs differ ({} vs {} edges)",
            fast.deps.num_edges(),
            reference.deps.num_edges()
        ));
    }
    Ok(())
}

/// Runs one seed through the full differential pipeline.
///
/// # Errors
///
/// Returns the first [`Divergence`] found; a clean run returns its
/// [`CaseStats`].
pub fn run_case(seed: u64) -> Result<CaseStats, Divergence> {
    let err = |stage: &'static str, detail: String| Divergence { seed, stage, detail };
    let cfg = GpuConfig::gtx960m();
    let lb = cfg.cache.line_bytes;
    // Pipeline knobs also derive from the seed: worker counts exercise
    // the sharded analyzer paths, thresholds vary merge aggressiveness,
    // and shrunken cache capacities force real tile splits (at the true
    // 2 MiB L2 these small workloads would never overflow a window, and
    // the interleaved sub-launch paths would go untested).
    let threads = 1 + (seed % 4) as usize;
    let thld = [0.0, 250.0, 1000.0][(seed / 7 % 3) as usize];
    let capacity = [4096, 16384, 65536, cfg.cache.capacity_bytes][(seed / 3 % 4) as usize];

    let mut app = gen_app(seed);
    let gt = kgraph::analyze_fast_with(&app.graph, &mut app.mem, lb, threads)
        .map_err(|e| err("analyze", format!("fast analyzer rejected the DAG: {e:?}")))?;
    let mut app_ref = gen_app(seed);
    let gt_ref = kgraph::analyze_reference_with(&app_ref.graph, &mut app_ref.mem, lb, 1)
        .map_err(|e| err("analyze", format!("reference analyzer rejected the DAG: {e:?}")))?;
    compare_traces(&gt, &gt_ref).map_err(|d| err("analyze", d))?;

    let freq = FreqConfig::new(1324.0, 1600.0);
    let cal = calibrate(&app.graph, &gt, &cfg, freq, &CalibrationConfig::default());
    let kcfg =
        KtilerConfig { weight_threshold_ns: thld, tile: TileParams::paper(capacity, lb, 0.0) };
    let out = ktiler_schedule(&app.graph, &gt, &cal, &kcfg)
        .map_err(|e| err("schedule", format!("{e}")))?;
    out.schedule.validate(&app.graph, &gt.deps).map_err(|e| err("validate", format!("{e:?}")))?;

    let rep = verify_schedule(&out.schedule, &app.graph, &gt, &kcfg.tile);
    if rep.num_errors() > 0 || rep.truncated() {
        let first = rep.errors().next().map(|v| v.to_string()).unwrap_or_default();
        return Err(err(
            "verify",
            format!("{} error(s), truncated={}: {first}", rep.num_errors(), rep.truncated()),
        ));
    }

    execute_schedule(&out.schedule, &app.graph, &gt, &cfg, freq, Some(0.0))
        .map_err(|e| err("execute", format!("{e}")))?;

    // Differential replay: untiled vs tiled on fresh builds.
    let mut base = gen_app(seed);
    run_schedule_functionally(&Schedule::default_order(&base.graph), &base.graph, &mut base.mem);
    let img_def = memory_image(&base.mem);
    let mut tiled = gen_app(seed);
    run_schedule_functionally(&out.schedule, &tiled.graph, &mut tiled.mem);
    let img_tiled = memory_image(&tiled.mem);
    if img_tiled != img_def {
        let which = img_def
            .iter()
            .zip(&img_tiled)
            .position(|(a, b)| a != b)
            .map(|i| format!("buffer {i}"))
            .unwrap_or_else(|| "buffer set".into());
        return Err(err("output", format!("tiled bytes differ from untiled in {which}")));
    }

    // Forced-tiling pass: same oracle stages against a schedule whose
    // interleaved sub-launches are guaranteed rather than cost-gated.
    let fcap = [3072u64, 4096, 6144][(seed / 5 % 3) as usize];
    let ftile = TileParams::paper(fcap, lb, 0.0);
    let forced = forced_tiled_schedule(seed, &app.graph, &gt, &cal, &ftile);
    forced.validate(&app.graph, &gt.deps).map_err(|e| err("forced-validate", format!("{e:?}")))?;
    let frep = verify_schedule(&forced, &app.graph, &gt, &ftile);
    if frep.num_errors() > 0 || frep.truncated() {
        let first = frep.errors().next().map(|v| v.to_string()).unwrap_or_default();
        return Err(err(
            "forced-verify",
            format!("{} error(s), truncated={}: {first}", frep.num_errors(), frep.truncated()),
        ));
    }
    execute_schedule(&forced, &app.graph, &gt, &cfg, freq, Some(0.0))
        .map_err(|e| err("forced-execute", format!("{e}")))?;
    let mut ftiled = gen_app(seed);
    run_schedule_functionally(&forced, &ftiled.graph, &mut ftiled.mem);
    if memory_image(&ftiled.mem) != img_def {
        return Err(err("forced-output", "forced-tiled bytes differ from untiled".into()));
    }

    let kernels = app
        .graph
        .node_ids()
        .filter(|&n| matches!(app.graph.node(n).op, kgraph::NodeOp::Kernel(_)))
        .count();
    Ok(CaseStats {
        nodes: app.graph.num_nodes(),
        kernels,
        launches: out.schedule.num_launches(),
        tiled_launches: out.schedule.num_tiled_launches(&app.graph),
        merges_accepted: out.report.merges_accepted,
        forced_tiled_launches: forced.num_tiled_launches(&app.graph),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = gen_app(42);
        let b = gen_app(42);
        assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(memory_image(&a.mem), memory_image(&b.mem));
    }

    #[test]
    fn generated_graphs_are_dags_with_varied_shapes() {
        let mut nodes = std::collections::HashSet::new();
        for seed in 0..20 {
            let app = gen_app(seed);
            assert!(kgraph::topo_order(&app.graph).is_ok(), "seed {seed} built a cycle");
            nodes.insert(app.graph.num_nodes());
        }
        assert!(nodes.len() > 5, "generator should vary graph sizes: {nodes:?}");
    }

    #[test]
    fn smoke_seeds_run_clean() {
        for seed in 0..8 {
            let stats = run_case(seed).unwrap_or_else(|d| panic!("{d}"));
            assert!(stats.nodes > 0);
        }
    }
}
