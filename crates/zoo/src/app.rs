//! The workload zoo: scheduled applications beyond optical flow.
//!
//! Each builder is deterministic (seeded synthetic inputs) and rebuilds
//! the *same* application — graph, buffer addresses, upload payloads —
//! on every call, which is what lets the differential oracle replay one
//! build's schedule against a fresh build's memory.

use gpu_sim::{Buffer, DeviceMemory, SplitMix64};
use kernels::compute::{Convolution2D, MatMul, ReduceSum, ARRAY_BLOCK};
use kernels::image::{Derivatives, GradThreshold};
use kgraph::{AppGraph, GraphBuilder};
use multigrid::{Grid, MgParams};

/// A built zoo application, ready for the full KTILER pipeline.
#[derive(Debug)]
pub struct ZooApp {
    /// Workload name, as reported in `BENCH_zoo.json`.
    pub name: String,
    /// The application graph.
    pub graph: AppGraph,
    /// Device memory with all buffers allocated.
    pub mem: DeviceMemory,
    /// The buffers holding the application's final results.
    pub outputs: Vec<Buffer>,
}

/// Deterministic pseudo-random f32 in `[-1, 1)`.
fn rand_f32(rng: &mut SplitMix64) -> f32 {
    (rng.next_u32() >> 8) as f32 / (1 << 23) as f32 - 1.0
}

/// `n` seeded values as an upload payload.
pub(crate) fn random_payload(seed: u64, n: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    (0..n).flat_map(|_| rand_f32(&mut rng).to_le_bytes()).collect()
}

/// Builds the multigrid V-cycle application: a sine-product right-hand
/// side on a `size × size` grid, solved with `cycles` V-cycles at the
/// default level count. The DAG is a deep chain of smooth / residual /
/// restrict / prolong / correct kernels — structurally nothing like the
/// optical-flow pyramid.
///
/// # Panics
///
/// Panics if `size` is not divisible by `2^(levels-1)` (see
/// [`multigrid::build_app`]).
pub fn build_multigrid(size: u32, cycles: u32) -> ZooApp {
    let mut f = Grid::zeros(size, size);
    for y in 0..size {
        for x in 0..size {
            let sx = ((x as f32 + 1.0) * std::f32::consts::PI / (size as f32 + 1.0)).sin();
            let sy = ((y as f32 + 1.0) * std::f32::consts::PI / (size as f32 + 1.0)).sin();
            f.data[(y * size + x) as usize] = sx * sy;
        }
    }
    let p = MgParams { cycles, ..MgParams::default() };
    let app = multigrid::build_app(&f, &p);
    ZooApp {
        name: format!("multigrid_{size}x{size}x{cycles}"),
        graph: app.graph,
        mem: app.mem,
        outputs: vec![app.u_out],
    }
}

/// Builds the image pipeline: for each of `frames` frames, blur (3×3 box
/// convolution) → gradient ([`Derivatives`] with both frame roles bound
/// to the blurred image — an intentionally aliased structural instance) →
/// gradient-magnitude threshold → two-stage sum reduction → read-back.
/// All frames reuse the same buffers, so the graph carries
/// write-after-read hazards and the analyzer sees repeated exact
/// signatures.
pub fn build_image_pipeline(w: u32, h: u32, frames: u32) -> ZooApp {
    assert!(frames > 0, "need at least one frame");
    let n = w as u64 * h as u64;
    let p1n = (n as u32).div_ceil(ARRAY_BLOCK);
    let mut mem = DeviceMemory::new();
    let img = mem.alloc_f32(n, "img");
    let blur = mem.alloc_f32(n, "blur");
    let ix = mem.alloc_f32(n, "ix");
    let iy = mem.alloc_f32(n, "iy");
    let it = mem.alloc_f32(n, "it");
    let mask = mem.alloc_f32(n, "mask");
    let part1 = mem.alloc_f32(p1n as u64, "part1");
    let part2 = mem.alloc_f32(p1n.div_ceil(ARRAY_BLOCK) as u64, "part2");

    let mut b = GraphBuilder::new();
    for frame in 0..frames {
        b.upload(img, random_payload(0x1000 + frame as u64, n));
        let conv = Convolution2D::new(img, blur, w, h, Convolution2D::box_filter(3), 3);
        b.kernel(Box::new(conv), &[img], &[blur]);
        // Spatial gradients of the blurred frame; the temporal derivative
        // comes out zero (both frame roles are the blurred image).
        let dv = Derivatives::new(blur, blur, ix, iy, it, w, h);
        b.kernel(Box::new(dv), &[blur], &[ix, iy, it]);
        let th = GradThreshold::new(ix, iy, mask, w, h, 0.08);
        b.kernel(Box::new(th), &[ix, iy], &[mask]);
        let r1 = ReduceSum::new(mask, part1, n as u32);
        b.kernel(Box::new(r1), &[mask], &[part1]);
        let r2 = ReduceSum::new(part1, part2, p1n);
        b.kernel(Box::new(r2), &[part1], &[part2]);
        b.download(part2);
    }

    ZooApp {
        name: format!("image_pipeline_{w}x{h}x{frames}"),
        graph: b.finish(),
        mem,
        outputs: vec![part2, mask],
    }
}

/// Builds the tiled-matmul chain: seeded `n × n` operands `A` and `B`,
/// then `depth` chained products `C_{i} = C_{i-1} · B` ping-ponging
/// between two result buffers, with a final read-back. Every product
/// reads the full `B`, so the chain is one long high-reuse pipeline —
/// the matmul-ladder shape the roofline references target.
pub fn build_matmul_chain(n: u32, depth: u32) -> ZooApp {
    assert!(depth > 0, "need at least one product");
    let elems = n as u64 * n as u64;
    let mut mem = DeviceMemory::new();
    let a = mem.alloc_f32(elems, "a");
    let bmat = mem.alloc_f32(elems, "b");
    let c0 = mem.alloc_f32(elems, "c0");
    let c1 = mem.alloc_f32(elems, "c1");

    let mut b = GraphBuilder::new();
    // Scale the operands down so deep chains stay in normal f32 range.
    b.upload(a, random_payload(0x2000, elems));
    b.upload(bmat, random_payload(0x2001, elems));
    let mut cur = a;
    let mut out = c0;
    for _ in 0..depth {
        let mm = MatMul::new(cur, bmat, out, n, n, n);
        b.kernel(Box::new(mm), &[cur, bmat], &[out]);
        cur = out;
        out = if cur.id == c0.id { c1 } else { c0 };
    }
    b.download(cur);

    ZooApp {
        name: format!("matmul_chain_{n}x{n}x{depth}"),
        graph: b.finish(),
        mem,
        outputs: vec![cur],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic() {
        let a = build_image_pipeline(32, 16, 2);
        let b = build_image_pipeline(32, 16, 2);
        assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        let bits = |app: &ZooApp| crate::exec::memory_image(&app.mem);
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn image_pipeline_counts_edges_and_masks() {
        let mut app = build_image_pipeline(32, 16, 3);
        let gt = kgraph::analyze(&app.graph, &mut app.mem, 128).unwrap();
        assert_eq!(gt.order.len(), app.graph.num_nodes());
        // The mask is 0/1-valued and the reduction tree sums it.
        let mask = app.mem.download_f32(app.outputs[1]);
        assert!(mask.iter().all(|&m| m == 0.0 || m == 1.0));
        let sum: f32 = mask.iter().sum();
        let reduced = app.mem.download_f32(app.outputs[0]);
        assert_eq!(reduced[0], sum, "two-stage reduction matches flat sum");
        let check = kgraph::check_edges(&app.graph, &gt.deps);
        assert!(check.is_sound(), "undeclared deps: {:?}", check.undeclared);
    }

    #[test]
    fn matmul_chain_matches_cpu_reference() {
        let n = 12u32;
        let mut app = build_matmul_chain(n, 3);
        kgraph::analyze(&app.graph, &mut app.mem, 128).unwrap();
        // CPU reference: read the uploaded operands back, chain products.
        let to_f32 = |bytes: Vec<u8>| -> Vec<f32> {
            bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
        };
        let a = to_f32(random_payload(0x2000, n as u64 * n as u64));
        let bm = to_f32(random_payload(0x2001, n as u64 * n as u64));
        let mul = |x: &[f32], y: &[f32]| -> Vec<f32> {
            let mut c = vec![0.0f32; (n * n) as usize];
            for i in 0..n as usize {
                for j in 0..n as usize {
                    let mut acc = 0.0f32;
                    for k in 0..n as usize {
                        acc += x[i * n as usize + k] * y[k * n as usize + j];
                    }
                    c[i * n as usize + j] = acc;
                }
            }
            c
        };
        let mut cur = a;
        for _ in 0..3 {
            cur = mul(&cur, &bm);
        }
        assert_eq!(app.mem.download_f32(app.outputs[0]), cur);
    }

    #[test]
    fn multigrid_app_reduces_residual() {
        let mut app = build_multigrid(32, 4);
        kgraph::analyze(&app.graph, &mut app.mem, 128).unwrap();
        let u = app.mem.download_f32(app.outputs[0]);
        assert!(u.iter().any(|&v| v != 0.0), "solver produced a nonzero iterate");
    }
}
