//! # zoo — scheduled workloads beyond optical flow, plus a DAG fuzzer
//!
//! Every correctness gate in this repo historically ran on
//! HSOpticalFlow-shaped graphs only. This crate widens the net:
//!
//! * [`app`] — three first-class applications built on the shared
//!   [`kgraph::GraphBuilder`]: a multigrid V-cycle DAG, an image pipeline
//!   (blur → gradient → threshold → reduce) and a tiled-matmul chain. Each
//!   is a [`ZooApp`]: graph + device memory + output handles, ready for
//!   the full analyze → calibrate → schedule → verify → execute pipeline.
//! * [`exec`] — functional schedule replay and whole-memory snapshots:
//!   the primitives of the differential oracle (tiled output must be
//!   byte-identical to untiled).
//! * [`fuzz`] — a seeded (SplitMix64) random-DAG generator over the
//!   kernel template families, driven through the pipeline with three
//!   oracles per case: the fast analyzer must match the full-trace
//!   reference, the verifier must be clean, and tiled execution must be
//!   bit-identical to untiled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod exec;
pub mod fuzz;

pub use app::{build_image_pipeline, build_matmul_chain, build_multigrid, ZooApp};
pub use exec::{memory_image, run_schedule_functionally};
pub use fuzz::{forced_tiled_schedule, gen_app, run_case, CaseStats, Divergence};
