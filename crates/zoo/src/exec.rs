//! Functional schedule replay and whole-memory snapshots — the
//! primitives of the differential oracle.

use gpu_sim::{BlockIdx, DeviceMemory};
use kgraph::{AppGraph, NodeOp};
use ktiler::Schedule;
use trace::{ExecCtx, TraceRecorder};

/// Executes a schedule *functionally*: kernels run block by block in
/// schedule order, `HtD` nodes upload at their scheduled position, `DtH`
/// nodes are no-ops (device memory is inspected directly afterwards).
/// No traces are recorded and no timing is modeled — this is the "what
/// would the GPU compute" semantics both sides of the differential
/// comparison share.
pub fn run_schedule_functionally(schedule: &Schedule, graph: &AppGraph, mem: &mut DeviceMemory) {
    let mut rec = TraceRecorder::new(128);
    rec.set_enabled(false);
    for sk in &schedule.launches {
        match &graph.node(sk.node).op {
            NodeOp::Kernel(k) => {
                let dims = k.dims();
                for &b in &sk.blocks {
                    let block = BlockIdx::from_id(b, dims.grid);
                    let mut ctx = ExecCtx::new(mem, &mut rec);
                    k.execute_block(block, &mut ctx);
                }
            }
            NodeOp::HostToDevice { buf, data } => mem.upload_u8(*buf, data),
            NodeOp::DeviceToHost { .. } => {}
        }
    }
}

/// Snapshots every device buffer as raw `f32` bit patterns, in
/// allocation order. Bit-level comparison (rather than `f32` equality)
/// keeps `NaN`s and signed zeros honest.
pub fn memory_image(mem: &DeviceMemory) -> Vec<Vec<u32>> {
    mem.buffers().map(|buf| mem.download_f32(buf).into_iter().map(f32::to_bits).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::build_image_pipeline;

    #[test]
    fn default_order_replay_matches_analyze() {
        let mut app = build_image_pipeline(32, 16, 2);
        kgraph::analyze(&app.graph, &mut app.mem, 128).unwrap();
        let analyzed = memory_image(&app.mem);

        let mut fresh = build_image_pipeline(32, 16, 2);
        let sched = Schedule::default_order(&fresh.graph);
        run_schedule_functionally(&sched, &fresh.graph, &mut fresh.mem);
        assert_eq!(memory_image(&fresh.mem), analyzed);
    }
}
