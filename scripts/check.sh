#!/usr/bin/env bash
# Repo health check: release build, full test suite, lints.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE=(--offline)
fi

echo "== cargo build --release =="
cargo build --workspace --release "${OFFLINE[@]}"

echo "== cargo test =="
cargo test --workspace -q "${OFFLINE[@]}"

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets "${OFFLINE[@]}" -- -D warnings

echo "== verify committed example schedule =="
cargo run --release -p bench --bin verify_schedule "${OFFLINE[@]}" -- \
    --schedule examples/schedules/optflow_64px.sched --size 64 --iters 2 --strict

echo "== panic-free gate (ktiler non-test sources) =="
# No .unwrap() / panic!() on ktiler's library paths: scan each source file
# up to its #[cfg(test)] marker, skipping comment lines (doctests live in
# doc comments and may unwrap freely). `expect`/`assert!` with invariant
# messages remain allowed — see the error-policy table in DESIGN.md.
GATE_FAIL=0
for f in crates/ktiler/src/*.rs; do
    hits=$(awk '/^#\[cfg\(test\)\]/ { exit }
                /^[[:space:]]*\/\// { next }
                /\.unwrap\(\)|panic!\(/ { print FILENAME ":" FNR ": " $0 }' "$f")
    if [[ -n "$hits" ]]; then
        echo "$hits"
        GATE_FAIL=1
    fi
done
if [[ "$GATE_FAIL" -ne 0 ]]; then
    echo "error: .unwrap()/panic!() found on ktiler library paths" >&2
    exit 1
fi

echo "== bench_scheduler smoke test =="
# One-sample run on a small workload: the JSON must carry all three phase
# timings and both determinism cross-checks must pass (parallel sharded
# analyzer == serial builder; schedule hash identical on both paths).
SMOKE_JSON=$(mktemp /tmp/bench_scheduler_smoke.XXXXXX.json)
trap 'rm -f "$SMOKE_JSON"' EXIT
cargo run --release -p bench --bin bench_scheduler "${OFFLINE[@]}" -- \
    --size 64 --iters 3 --samples 1 --out "$SMOKE_JSON"
for key in analyze_ms calibrate_ms ktiler_schedule_ms; do
    if ! grep -q "\"$key\"" "$SMOKE_JSON"; then
        echo "error: $key missing from bench_scheduler output" >&2
        exit 1
    fi
done
for check in '"analyzer_match": true' '"schedule_hash_match": true'; do
    if ! grep -qF "$check" "$SMOKE_JSON"; then
        echo "error: bench_scheduler determinism check failed: expected $check" >&2
        exit 1
    fi
done

echo "== OK =="
