#!/usr/bin/env bash
# Repo health check: release build, full test suite, lints.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE=(--offline)
fi

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo build --release =="
cargo build --workspace --release "${OFFLINE[@]}"

echo "== cargo test =="
cargo test --workspace -q "${OFFLINE[@]}"

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets "${OFFLINE[@]}" -- -D warnings

echo "== verify committed example schedule =="
cargo run --release -p bench --bin verify_schedule "${OFFLINE[@]}" -- \
    --schedule examples/schedules/optflow_64px.sched --size 64 --iters 2 --strict

echo "== panic-free gate (ktiler non-test sources) =="
# No .unwrap() / panic!() on ktiler's library paths: scan each source file
# up to its #[cfg(test)] marker, skipping comment lines (doctests live in
# doc comments and may unwrap freely). `expect`/`assert!` with invariant
# messages remain allowed — see the error-policy table in DESIGN.md.
GATE_FAIL=0
for f in crates/ktiler/src/*.rs; do
    hits=$(awk '/^#\[cfg\(test\)\]/ { exit }
                /^[[:space:]]*\/\// { next }
                /\.unwrap\(\)|panic!\(/ { print FILENAME ":" FNR ": " $0 }' "$f")
    if [[ -n "$hits" ]]; then
        echo "$hits"
        GATE_FAIL=1
    fi
done
if [[ "$GATE_FAIL" -ne 0 ]]; then
    echo "error: .unwrap()/panic!() found on ktiler library paths" >&2
    exit 1
fi

echo "== containment gate (ktiler-svc non-test sources) =="
# The service survives injected panics only because every lock goes
# through the poison-recovering helpers in the fault module and nothing
# on a library path unwraps. Forbid bare .unwrap() / .lock().expect(
# outside crates/ktiler-svc/src/fault.rs (same scan shape as above).
GATE_FAIL=0
for f in crates/ktiler-svc/src/*.rs; do
    [[ "$f" == */fault.rs ]] && continue
    hits=$(awk '/^#\[cfg\(test\)\]/ { exit }
                /^[[:space:]]*\/\// { next }
                /\.unwrap\(\)|\.lock\(\)\.expect\(/ { print FILENAME ":" FNR ": " $0 }' "$f")
    if [[ -n "$hits" ]]; then
        echo "$hits"
        GATE_FAIL=1
    fi
done
if [[ "$GATE_FAIL" -ne 0 ]]; then
    echo "error: bare .unwrap()/.lock().expect( found on ktiler-svc library paths" >&2
    echo "       (use the fault::lock/cv_wait helpers or propagate the error)" >&2
    exit 1
fi

echo "== chaos suite (fixed seed) =="
# The seeded fault-injection suite: panics mid-pipeline, crashed workers,
# failed stores, corrupt artifacts, stalled sockets, dropped connections.
# A fixed seed pins the delay jitter and backoff streams so a failure
# here reproduces byte-for-byte.
KTILER_CHAOS_SEED=20260806 cargo test -p ktiler-svc --test chaos_service -q "${OFFLINE[@]}"

echo "== analyzer equivalence (paper-scale, release) =="
# The fast analyzer (structural trace reuse + analytical affine footprints)
# must be byte-identical to the full-trace reference on the 512²/30-iter
# workload the acceptance bar names, for serial and multi-threaded builds.
cargo test --release -p bench --test analyzer_equivalence "${OFFLINE[@]}" -- --ignored

echo "== fuzz corpus regression suite (release) =="
# Every seed in crates/ktiler/tests/fuzz_corpus/ once exposed a real
# scheduler bug (missing WAR/WAW hazard edges; atomic-node pessimism
# missing transitive ancestors). Each replays the full differential
# pipeline from its seed alone.
cargo test --release -p ktiler --test fuzz_corpus -q "${OFFLINE[@]}"

echo "== DAG fuzz smoke (seeds 0..200) =="
# 200 seeded random DAGs through the differential oracle (analyzer
# equivalence, validation, verification, execution, byte-exact
# tiled-vs-untiled replay, forced tiling). Deterministic: any failure
# prints the seed and reproduces standalone via
#   fuzz_dags --seed0 <seed> --count 1 --verbose
# Exits non-zero on any divergence.
cargo run --release -p bench --bin fuzz_dags "${OFFLINE[@]}" -- --seed0 0 --count 200

echo "== bench_scheduler smoke test =="
# One-sample run on a small workload: the JSON must carry the phase
# timings, both determinism cross-checks must pass (parallel sharded
# analyzer == serial builder; schedule hash identical on both paths), and
# the fast analyzer must match the full-trace reference while beating it
# by at least 5x. 192²/10-iter is the smallest scale where structural
# reuse dominates the fixed per-run costs enough for that margin to be
# stable; the committed 512² results show ~25x.
SMOKE_JSON=$(mktemp /tmp/bench_scheduler_smoke.XXXXXX.json)
ZOO_JSON=$(mktemp /tmp/bench_zoo_smoke.XXXXXX.json)
SVC_DIR=$(mktemp -d /tmp/ktiler_svc_smoke.XXXXXX)
MN_DIR=$(mktemp -d /tmp/ktiler_multi_smoke.XXXXXX)
trap 'rm -f "$SMOKE_JSON" "$ZOO_JSON"; rm -rf "$SVC_DIR" "$MN_DIR";
      for p in "${SERVE_PID:-}" "${NODE0_PID:-}" "${NODE1_PID:-}" "${GW_PID:-}"; do
          [[ -n "$p" ]] && kill "$p" 2>/dev/null || true
      done' EXIT
cargo run --release -p bench --bin bench_scheduler "${OFFLINE[@]}" -- \
    --size 192 --iters 10 --samples 1 --out "$SMOKE_JSON"
for key in analyze_ms analyze_full_ms calibrate_ms ktiler_schedule_ms cold_request_ms; do
    if ! grep -q "\"$key\"" "$SMOKE_JSON"; then
        echo "error: $key missing from bench_scheduler output" >&2
        exit 1
    fi
done
for check in '"analyze_match": true' '"analyzer_match": true' '"schedule_hash_match": true'; do
    if ! grep -qF "$check" "$SMOKE_JSON"; then
        echo "error: bench_scheduler determinism check failed: expected $check" >&2
        exit 1
    fi
done
SPEEDUP=$(awk -F': ' '/"analyze_speedup"/ { gsub(/,/, "", $2); print $2 }' "$SMOKE_JSON")
if ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 5) }'; then
    echo "error: fast-analyzer speedup regressed: analyze_speedup = ${SPEEDUP:-missing} (< 5)" >&2
    exit 1
fi

echo "== workload zoo: smoke run + committed-results freshness =="
# Smoke scale: the binary itself asserts verify_ok and outputs_match for
# every zoo workload before writing the JSON.
cargo run --release -p bench --bin bench_zoo "${OFFLINE[@]}" -- --small --out "$ZOO_JSON"
# Committed full-scale results must cover all three workload families,
# be a full-scale run, carry the speedup field, and have no failed gate.
for fam in multigrid image_pipeline matmul_chain; do
    if ! grep -q "\"name\": \"${fam}_" results/BENCH_zoo.json; then
        echo "error: workload family $fam missing from results/BENCH_zoo.json" >&2
        exit 1
    fi
done
grep -qF '"small": false' results/BENCH_zoo.json \
    || { echo "error: committed BENCH_zoo.json is a --small run" >&2; exit 1; }
grep -qF '"speedup"' results/BENCH_zoo.json \
    || { echo "error: committed BENCH_zoo.json carries no speedup field" >&2; exit 1; }
if grep -qE '"(verify_ok|outputs_match)": false' results/BENCH_zoo.json; then
    echo "error: committed BENCH_zoo.json records a failed correctness gate" >&2
    exit 1
fi

echo "== ktiler-svc service smoke test =="
# Full service loop against the release binaries: start the server on an
# ephemeral port, drive miss -> hit -> corrupted-artifact -> recompute
# through the network client, check the counters, shut down cleanly.
CLIENT=(target/release/ktiler_tool client)
target/release/ktiler_serve --addr 127.0.0.1:0 --cache-dir "$SVC_DIR/cache" \
    --port-file "$SVC_DIR/port" --stats-out "$SVC_DIR/stats.json" \
    >"$SVC_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [[ -s "$SVC_DIR/port" ]] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "error: ktiler_serve exited early" >&2
        cat "$SVC_DIR/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$SVC_DIR/port")
SCHED_ARGS=(schedule --addr "$ADDR" --size 64 --iters 3 --levels 2)

# Capture client output instead of piping into grep -q: -q exits on the
# first match, and the client's follow-up "wrote ..." line would then
# die on a broken pipe (flaky under pipefail).
"${CLIENT[@]}" "${SCHED_ARGS[@]}" --out "$SVC_DIR/first.sched" | grep '^MISS ' >/dev/null \
    || { echo "error: first request should be a MISS" >&2; exit 1; }
"${CLIENT[@]}" "${SCHED_ARGS[@]}" --out "$SVC_DIR/second.sched" | grep '^HIT ' >/dev/null \
    || { echo "error: second request should be a HIT" >&2; exit 1; }
cmp -s "$SVC_DIR/first.sched" "$SVC_DIR/second.sched" \
    || { echo "error: cache hit is not byte-identical to the miss" >&2; exit 1; }

# Corrupt the single cached artifact; the service must detect it on load
# and transparently recompute.
ARTIFACT=$(ls "$SVC_DIR"/cache/*.sched)
echo "garbage, not a schedule" > "$ARTIFACT"
"${CLIENT[@]}" "${SCHED_ARGS[@]}" --out "$SVC_DIR/third.sched" | grep '^RECOMPUTE ' >/dev/null \
    || { echo "error: corrupted artifact should trigger a RECOMPUTE" >&2; exit 1; }
cmp -s "$SVC_DIR/first.sched" "$SVC_DIR/third.sched" \
    || { echo "error: recompute did not reproduce the original schedule" >&2; exit 1; }

"${CLIENT[@]}" stats --addr "$ADDR" > "$SVC_DIR/live_stats.json"
for check in '"cache_hits": 1' '"cache_misses": 1' '"verify_failures": 1'; do
    if ! grep -qF "$check" "$SVC_DIR/live_stats.json"; then
        echo "error: service stats check failed: expected $check" >&2
        cat "$SVC_DIR/live_stats.json" >&2
        exit 1
    fi
done

"${CLIENT[@]}" shutdown --addr "$ADDR" | grep '^BYE$' >/dev/null \
    || { echo "error: shutdown not acknowledged" >&2; exit 1; }
for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "error: ktiler_serve did not exit after SHUTDOWN" >&2
    exit 1
fi
SERVE_PID=""
grep -qF '"requests": 3' "$SVC_DIR/stats.json" \
    || { echo "error: final stats dump missing or wrong" >&2; cat "$SVC_DIR/stats.json" >&2; exit 1; }

echo "== multi-node smoke test (2 nodes + gateway) =="
# The deployment story live: two peered nodes behind a gateway, driven
# miss -> hit -> kill-the-owning-node -> failover, every answer
# byte-identical. --hot-threshold 1 replicates the artifact to the
# replica owner on the first response, so the post-kill request must be
# served without a recompute.
wait_port_file() {
    local file=$1 pid=$2 what=$3
    for _ in $(seq 1 100); do
        [[ -s "$file" ]] && return 0
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "error: $what exited early" >&2
            cat "$MN_DIR"/*.log >&2 || true
            exit 1
        fi
        sleep 0.1
    done
    echo "error: $what never wrote its port file" >&2
    exit 1
}
target/release/ktiler_serve --addr 127.0.0.1:0 --cache-dir "$MN_DIR/cache0" \
    --port-file "$MN_DIR/port0" >"$MN_DIR/node0.log" 2>&1 &
NODE0_PID=$!
wait_port_file "$MN_DIR/port0" "$NODE0_PID" "node 0"
ADDR0=$(cat "$MN_DIR/port0")
target/release/ktiler_serve --addr 127.0.0.1:0 --cache-dir "$MN_DIR/cache1" \
    --peer "$ADDR0" --port-file "$MN_DIR/port1" >"$MN_DIR/node1.log" 2>&1 &
NODE1_PID=$!
wait_port_file "$MN_DIR/port1" "$NODE1_PID" "node 1"
ADDR1=$(cat "$MN_DIR/port1")
target/release/ktiler_gateway --node "$ADDR0" --node "$ADDR1" \
    --addr 127.0.0.1:0 --hot-threshold 1 --dead-cooldown-ms 200 \
    --port-file "$MN_DIR/gwport" >"$MN_DIR/gateway.log" 2>&1 &
GW_PID=$!
wait_port_file "$MN_DIR/gwport" "$GW_PID" "gateway"
GW_ADDR=$(cat "$MN_DIR/gwport")
GW_SCHED=(schedule --addr "$GW_ADDR" --size 64 --iters 3 --levels 2)

"${CLIENT[@]}" "${GW_SCHED[@]}" --out "$MN_DIR/first.sched" | grep '^MISS ' >/dev/null \
    || { echo "error: first request through the gateway should be a MISS" >&2; exit 1; }
"${CLIENT[@]}" "${GW_SCHED[@]}" --out "$MN_DIR/second.sched" | grep '^HIT ' >/dev/null \
    || { echo "error: second request through the gateway should be a HIT" >&2; exit 1; }
cmp -s "$MN_DIR/first.sched" "$MN_DIR/second.sched" \
    || { echo "error: gateway hit is not byte-identical to the miss" >&2; exit 1; }

# The owning node is the one the gateway forwarded both requests to
# (per-node counters in the gateway's stats document).
"${CLIENT[@]}" stats --addr "$GW_ADDR" > "$MN_DIR/gw_stats.json"
OWNER=$(awk -F'"' '/"addr"/ {
            addr = $4
            if (match($0, /"forwarded": [0-9]+/)) {
                n = substr($0, RSTART + 13, RLENGTH - 13) + 0
                if (n > best) { best = n; owner = addr }
            }
        } END { print owner }' "$MN_DIR/gw_stats.json")
if [[ "$OWNER" == "$ADDR0" ]]; then
    kill "$NODE0_PID"; wait "$NODE0_PID" 2>/dev/null || true; NODE0_PID=""
elif [[ "$OWNER" == "$ADDR1" ]]; then
    kill "$NODE1_PID"; wait "$NODE1_PID" 2>/dev/null || true; NODE1_PID=""
else
    echo "error: cannot identify the owning node from gateway stats" >&2
    cat "$MN_DIR/gw_stats.json" >&2
    exit 1
fi

# The owner is dead; the replica must serve the replicated artifact as a
# plain hit, byte-identical, with no client-visible error.
"${CLIENT[@]}" "${GW_SCHED[@]}" --out "$MN_DIR/failover.sched" | grep '^HIT ' >/dev/null \
    || { echo "error: post-kill request should fail over to a replica HIT" >&2; exit 1; }
cmp -s "$MN_DIR/first.sched" "$MN_DIR/failover.sched" \
    || { echo "error: failover response is not byte-identical" >&2; exit 1; }

"${CLIENT[@]}" shutdown --addr "$GW_ADDR" | grep '^BYE$' >/dev/null \
    || { echo "error: gateway shutdown not acknowledged" >&2; exit 1; }
for _ in $(seq 1 100); do
    kill -0 "$GW_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$GW_PID" 2>/dev/null && { echo "error: gateway did not exit" >&2; exit 1; }
GW_PID=""
for pid_var in NODE0_PID NODE1_PID; do
    pid=${!pid_var}
    [[ -n "$pid" ]] || continue
    if [[ "$pid_var" == NODE0_PID ]]; then addr=$ADDR0; else addr=$ADDR1; fi
    "${CLIENT[@]}" shutdown --addr "$addr" >/dev/null \
        || { echo "error: node shutdown not acknowledged" >&2; exit 1; }
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$pid" 2>/dev/null && { echo "error: node did not exit" >&2; exit 1; }
    printf -v "$pid_var" ''
done

echo "== bench_svc: smoke run + committed-results gate =="
# Smoke scale: the binary spawns its own 2-node ring + gateway, drives
# 200 connections with a mid-run node kill, and exits non-zero on any
# client-visible error or byte mismatch against the single-node
# reference.
SVC_JSON=$(mktemp /tmp/bench_svc_smoke.XXXXXX.json)
SVC_WORK=$(mktemp -d /tmp/bench_svc_work.XXXXXX)
trap 'rm -f "$SMOKE_JSON" "$ZOO_JSON" "$SVC_JSON"; rm -rf "$SVC_DIR" "$MN_DIR" "$SVC_WORK";
      for p in "${SERVE_PID:-}" "${NODE0_PID:-}" "${NODE1_PID:-}" "${GW_PID:-}"; do
          [[ -n "$p" ]] && kill "$p" 2>/dev/null || true
      done' EXIT
target/release/bench_svc --small --out "$SVC_JSON" --work-dir "$SVC_WORK" >/dev/null
# Committed full-scale results: a full (not --small) run against a
# multi-node ring with the mid-bench node kill, zero client-visible
# errors, every response byte-identical, a warm-key hit rate >= 0.95,
# and the tail quantiles present.
for check in '"small": false' '"killed_node": true' '"client_errors": 0' \
             '"all_match": true' '"p50_us"' '"p99_us"' '"p999_us"'; do
    if ! grep -qF "$check" results/BENCH_svc.json; then
        echo "error: committed BENCH_svc.json check failed: expected $check" >&2
        exit 1
    fi
done
WARM=$(awk -F': ' '/"warm_hit_rate"/ { gsub(/,/, "", $2); print $2 }' results/BENCH_svc.json)
if ! awk -v w="$WARM" 'BEGIN { exit !(w >= 0.95) }'; then
    echo "error: committed BENCH_svc.json warm_hit_rate = ${WARM:-missing} (< 0.95)" >&2
    exit 1
fi

echo "== crash-recovery smoke (SIGKILL mid-store -> anti-entropy heal) =="
# The durability + anti-entropy story live (DESIGN.md §16): warm node A;
# start node B with an injected 30 s delay in the fsync window, SIGKILL
# it while its store is still a tmp file, assert no torn artifact under
# the live name; restart B empty with A as a peer and gate on
# anti-entropy reaching a byte-identical copy with zero client traffic,
# then a plain local HIT.
CR_DIR=$(mktemp -d /tmp/ktiler_crash_smoke.XXXXXX)
trap 'rm -f "$SMOKE_JSON" "$ZOO_JSON" "$SVC_JSON";
      rm -rf "$SVC_DIR" "$MN_DIR" "$SVC_WORK" "$CR_DIR";
      for p in "${SERVE_PID:-}" "${NODE0_PID:-}" "${NODE1_PID:-}" "${GW_PID:-}" \
               "${CR_A_PID:-}" "${CR_B_PID:-}" "${CR_CLIENT_PID:-}"; do
          [[ -n "$p" ]] && kill -9 "$p" 2>/dev/null || true
      done' EXIT

target/release/ktiler_serve --addr 127.0.0.1:0 --cache-dir "$CR_DIR/cacheA" \
    --port-file "$CR_DIR/portA" >"$CR_DIR/nodeA.log" 2>&1 &
CR_A_PID=$!
wait_port_file "$CR_DIR/portA" "$CR_A_PID" "crash-smoke node A"
CR_ADDR_A=$(cat "$CR_DIR/portA")
"${CLIENT[@]}" schedule --addr "$CR_ADDR_A" --size 64 --iters 3 --levels 2 \
    --out "$CR_DIR/warm.sched" | grep '^MISS ' >/dev/null \
    || { echo "error: warming node A should be a MISS" >&2; exit 1; }
ARTIFACT_A=$(ls "$CR_DIR"/cacheA/*.sched)

# Node B: the fsync fault holds every store in the uncommitted tmp-file
# window for 30 s — the exact window the SIGKILL must land in.
target/release/ktiler_serve --addr 127.0.0.1:0 --cache-dir "$CR_DIR/cacheB" \
    --fault "cache.fsync=delay:30000" \
    --port-file "$CR_DIR/portB" >"$CR_DIR/nodeB.log" 2>&1 &
CR_B_PID=$!
wait_port_file "$CR_DIR/portB" "$CR_B_PID" "crash-smoke node B"
CR_ADDR_B=$(cat "$CR_DIR/portB")
"${CLIENT[@]}" schedule --addr "$CR_ADDR_B" --size 64 --iters 3 --levels 2 \
    >/dev/null 2>&1 &
CR_CLIENT_PID=$!
for _ in $(seq 1 200); do
    compgen -G "$CR_DIR/cacheB/*.sched.tmp.*" >/dev/null && break
    sleep 0.1
done
compgen -G "$CR_DIR/cacheB/*.sched.tmp.*" >/dev/null \
    || { echo "error: node B never entered the uncommitted store window" >&2
         cat "$CR_DIR/nodeB.log" >&2; exit 1; }
kill -9 "$CR_B_PID"; wait "$CR_B_PID" 2>/dev/null || true; CR_B_PID=""
wait "$CR_CLIENT_PID" 2>/dev/null || true; CR_CLIENT_PID=""
if compgen -G "$CR_DIR/cacheB/*.sched" >/dev/null; then
    echo "error: SIGKILL mid-store left an artifact under the live name" >&2
    exit 1
fi

# Restart B on the same (effectively empty) cache dir: the orphaned tmp
# file must be recovered on open, and anti-entropy against A must pull
# the artifact back with no client traffic at all.
target/release/ktiler_serve --addr 127.0.0.1:0 --cache-dir "$CR_DIR/cacheB" \
    --peer "$CR_ADDR_A" --sync-interval-ms 200 \
    --port-file "$CR_DIR/portB2" >"$CR_DIR/nodeB2.log" 2>&1 &
CR_B_PID=$!
wait_port_file "$CR_DIR/portB2" "$CR_B_PID" "crash-smoke node B (restart)"
CR_ADDR_B=$(cat "$CR_DIR/portB2")
HEALED="$CR_DIR/cacheB/$(basename "$ARTIFACT_A")"
for _ in $(seq 1 100); do
    [[ -f "$HEALED" ]] && cmp -s "$ARTIFACT_A" "$HEALED" && break
    sleep 0.1
done
cmp -s "$ARTIFACT_A" "$HEALED" \
    || { echo "error: anti-entropy never converged to a byte-identical artifact" >&2
         cat "$CR_DIR/nodeB2.log" >&2; exit 1; }
if compgen -G "$CR_DIR/cacheB/*.sched.tmp.*" >/dev/null; then
    echo "error: restart did not recover the orphaned tmp file" >&2
    exit 1
fi

# The healed node serves the key as a plain local HIT, byte-identical.
"${CLIENT[@]}" schedule --addr "$CR_ADDR_B" --size 64 --iters 3 --levels 2 \
    --out "$CR_DIR/healed.sched" | grep '^HIT ' >/dev/null \
    || { echo "error: the healed node should serve a local HIT" >&2; exit 1; }
cmp -s "$CR_DIR/warm.sched" "$CR_DIR/healed.sched" \
    || { echo "error: healed response is not byte-identical to the warm one" >&2; exit 1; }
"${CLIENT[@]}" stats --addr "$CR_ADDR_B" | grep -qF '"tmp_recovered": 1' \
    || { echo "error: tmp_recovered counter missing after the restart" >&2; exit 1; }

for pid_var in CR_B_PID CR_A_PID; do
    pid=${!pid_var}
    [[ -n "$pid" ]] || continue
    if [[ "$pid_var" == CR_A_PID ]]; then addr=$CR_ADDR_A; else addr=$CR_ADDR_B; fi
    "${CLIENT[@]}" shutdown --addr "$addr" >/dev/null \
        || { echo "error: crash-smoke node shutdown not acknowledged" >&2; exit 1; }
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$pid" 2>/dev/null && { echo "error: crash-smoke node did not exit" >&2; exit 1; }
    printf -v "$pid_var" ''
done

echo "== OK =="
