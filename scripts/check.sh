#!/usr/bin/env bash
# Repo health check: release build, full test suite, lints.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE=(--offline)
fi

echo "== cargo build --release =="
cargo build --workspace --release "${OFFLINE[@]}"

echo "== cargo test =="
cargo test --workspace -q "${OFFLINE[@]}"

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets "${OFFLINE[@]}" -- -D warnings

echo "== OK =="
