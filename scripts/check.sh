#!/usr/bin/env bash
# Repo health check: release build, full test suite, lints.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE=(--offline)
fi

echo "== cargo build --release =="
cargo build --workspace --release "${OFFLINE[@]}"

echo "== cargo test =="
cargo test --workspace -q "${OFFLINE[@]}"

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets "${OFFLINE[@]}" -- -D warnings

echo "== verify committed example schedule =="
cargo run --release -p bench --bin verify_schedule "${OFFLINE[@]}" -- \
    --schedule examples/schedules/optflow_64px.sched --size 64 --iters 2 --strict

echo "== panic-free gate (ktiler non-test sources) =="
# No .unwrap() / panic!() on ktiler's library paths: scan each source file
# up to its #[cfg(test)] marker, skipping comment lines (doctests live in
# doc comments and may unwrap freely). `expect`/`assert!` with invariant
# messages remain allowed — see the error-policy table in DESIGN.md.
GATE_FAIL=0
for f in crates/ktiler/src/*.rs; do
    hits=$(awk '/^#\[cfg\(test\)\]/ { exit }
                /^[[:space:]]*\/\// { next }
                /\.unwrap\(\)|panic!\(/ { print FILENAME ":" FNR ": " $0 }' "$f")
    if [[ -n "$hits" ]]; then
        echo "$hits"
        GATE_FAIL=1
    fi
done
if [[ "$GATE_FAIL" -ne 0 ]]; then
    echo "error: .unwrap()/panic!() found on ktiler library paths" >&2
    exit 1
fi

echo "== OK =="
