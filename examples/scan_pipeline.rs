//! A compute pipeline from the Sec. II study: Hillis–Steele inclusive scan.
//!
//! A full scan over `n` elements is a chain of `log2(n)` kernels, each
//! reading the whole previous array — exactly the inter-kernel traffic
//! KTILER converts into L2 hits. Early steps have local block dependencies
//! (block `b` needs blocks `b` and `b-1` of the previous step), so the
//! tiler can interleave deep chains; late steps reach across the array and
//! resist tiling — the scheduler discovers this split on its own.
//!
//! Run with: `cargo run --release --example scan_pipeline`

use gpu_sim::{DeviceMemory, FreqConfig, GpuConfig};
use kernels::compute::{scan_steps, FillSeq, ScanStep};
use ktiler::{
    calibrate, execute_schedule, ktiler_schedule, CalibrationConfig, KtilerConfig, Schedule,
    TileParams,
};

fn main() {
    let n = 1 << 21; // 2M elements = 8 MiB per array, 4x the L2
    let mut mem = DeviceMemory::new();
    let a = mem.alloc_f32(n as u64, "ping");
    let b = mem.alloc_f32(n as u64, "pong");

    let mut graph = kgraph::AppGraph::new();
    let fill = graph.add_kernel(Box::new(FillSeq::new(a, n, 0.0, 1.0))); // all ones
    let mut bufs = (a, b);
    let mut prev = fill;
    let mut prev_buf = a;
    for offset in scan_steps(n) {
        let k = graph.add_kernel(Box::new(ScanStep::new(bufs.0, bufs.1, n, offset)));
        graph.add_edge(prev, k, prev_buf);
        prev = k;
        prev_buf = bufs.1;
        bufs = (bufs.1, bufs.0);
    }
    let result_buf = bufs.0;
    println!("scan of {n} elements: {} kernels in a chain", graph.num_nodes());

    let cfg = GpuConfig::gtx960m();
    let gt = kgraph::analyze(&graph, &mut mem, cfg.cache.line_bytes).unwrap();

    // Functional check: inclusive scan of ones is 1, 2, 3, ...
    for i in [0u64, 1, 12345, n as u64 - 1] {
        assert_eq!(mem.read_f32(result_buf, i), (i + 1) as f32);
    }
    println!("functional check passed: scan(1,1,...)[i] == i+1");

    let freq = FreqConfig::new(1324.0, 1600.0);
    let cal = calibrate(&graph, &gt, &cfg, freq, &CalibrationConfig::default());
    let kcfg = KtilerConfig {
        weight_threshold_ns: 1_000.0,
        tile: TileParams::paper(cfg.cache.capacity_bytes, cfg.cache.line_bytes, 0.0),
    };
    let out = ktiler_schedule(&graph, &gt, &cal, &kcfg).unwrap();
    out.schedule.validate(&graph, &gt.deps).unwrap();
    println!("KTILER: {} clusters, {} launches", out.clusters.len(), out.schedule.num_launches());
    for (i, c) in out.clusters.iter().enumerate() {
        if c.len() > 1 {
            let labels: Vec<String> = c.iter().map(|&n| graph.node(n).label.clone()).collect();
            println!("  cluster {i}: {}", labels.join(" + "));
        }
    }

    let default =
        execute_schedule(&Schedule::default_order(&graph), &graph, &gt, &cfg, freq, None).unwrap();
    let tiled = execute_schedule(&out.schedule, &graph, &gt, &cfg, freq, None).unwrap();
    println!(
        "\ndefault: {:.2} ms (hit {:.0}%) | ktiler: {:.2} ms (hit {:.0}%) | gain {:.1}%",
        default.total_ns / 1e6,
        default.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        tiled.total_ns / 1e6,
        tiled.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        tiled.gain_over(&default).unwrap_or(0.0) * 100.0
    );
}
