//! The paper's test case: pyramidal Horn–Schunck optical flow.
//!
//! Builds the full HSOpticalFlow kernel graph (Fig. 4), recovers the flow
//! between two synthetic frames, validates it against the pure-CPU
//! reference and the ground-truth translation, and reports the KTILER
//! speedup at a memory-constrained operating point.
//!
//! Run with: `cargo run --release --example optical_flow [--size N] [--iters N]`

use gpu_sim::{FreqConfig, GpuConfig};
use hsoptflow::{average_endpoint_error, build_app, horn_schunck, synthetic_pair, HsParams};
use ktiler::{
    calibrate, execute_schedule, ktiler_schedule, CalibrationConfig, KtilerConfig, Schedule,
    TileParams,
};

fn arg(name: &str, default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let size = arg("--size", 256);
    let iters = arg("--iters", 40);
    let (dx, dy) = (1.0f32, 0.5f32);
    let p = HsParams { levels: 3, jacobi_iters: iters, warp_iters: 1, alpha2: 0.05 };
    println!("frames: {size}x{size}, ground-truth flow ({dx}, {dy}), {iters} JI/step");

    // Build and functionally execute the kernel graph (the analysis run).
    let (f0, f1) = synthetic_pair(size, size, dx, dy, 42);
    let mut app = build_app(&f0, &f1, &p);
    let cfg = GpuConfig::gtx960m();
    let gt = kgraph::analyze(&app.graph, &mut app.mem, cfg.cache.line_bytes).unwrap();

    // Flow quality: graph output vs CPU reference vs ground truth.
    let u = app.mem.download_f32(app.u_out);
    let v = app.mem.download_f32(app.v_out);
    let (u_ref, v_ref) = horn_schunck(&f0, &f1, &p);
    let max_dev = u
        .iter()
        .zip(&u_ref.data)
        .chain(v.iter().zip(&v_ref.data))
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("graph vs CPU reference: max deviation {max_dev:e} (expected: 0)");
    let aee = average_endpoint_error(&u, &v, size, size, dx, dy, size / 8);
    println!("average endpoint error vs ground truth: {aee:.3} px");

    // KTILER vs default at a memory-constrained DVFS point.
    let freq = FreqConfig::new(1324.0, 1600.0);
    let cal = calibrate(&app.graph, &gt, &cfg, freq, &CalibrationConfig::default());
    let kcfg = KtilerConfig {
        weight_threshold_ns: 1_000.0,
        tile: TileParams::paper(cfg.cache.capacity_bytes, cfg.cache.line_bytes, 0.0),
    };
    let out = ktiler_schedule(&app.graph, &gt, &cal, &kcfg).unwrap();
    out.schedule.validate(&app.graph, &gt.deps).unwrap();

    let default =
        execute_schedule(&Schedule::default_order(&app.graph), &app.graph, &gt, &cfg, freq, None)
            .unwrap();
    let tiled = execute_schedule(&out.schedule, &app.graph, &gt, &cfg, freq, None).unwrap();
    let tiled_noig =
        execute_schedule(&out.schedule, &app.graph, &gt, &cfg, freq, Some(0.0)).unwrap();
    println!(
        "\n{} kernels -> {} sub-kernel launches in {} clusters",
        app.graph.num_nodes(),
        out.schedule.num_launches(),
        out.clusters.len()
    );
    println!(
        "default      : {:8.2} ms  (hit {:.0}%)",
        default.total_ns / 1e6,
        default.stats.hit_rate().unwrap_or(f64::NAN) * 100.0
    );
    println!(
        "ktiler       : {:8.2} ms  (hit {:.0}%)  gain {:.1}%",
        tiled.total_ns / 1e6,
        tiled.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        tiled.gain_over(&default).unwrap_or(0.0) * 100.0
    );
    println!(
        "ktiler w/o IG: {:8.2} ms              gain {:.1}%",
        tiled_noig.total_ns / 1e6,
        tiled_noig.gain_over(&default).unwrap_or(0.0) * 100.0
    );
    println!("\n(at 256x256 the coarse pyramid levels fit in the L2; try --size 512");
    println!(" or --size 1024 for the paper's regime — analysis takes longer)");
}
