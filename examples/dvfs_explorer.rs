//! DVFS exploration — the paper's Figure 3 insight as a tool.
//!
//! Section II observes that splitting a thousand-block Jacobi launch into
//! four 250-block sub-kernels at the *lowest* frequency configuration can
//! beat the single big launch at a much higher configuration — higher
//! throughput at lower power. This example sweeps sub-kernel sizes across
//! operating points for a producer→consumer Jacobi pair and prints the
//! best (size, frequency) choice per grid budget.
//!
//! Run with: `cargo run --release --example dvfs_explorer`

use gpu_sim::{fig3_freq_configs, DeviceMemory, Engine, FreqConfig, GpuConfig, PowerModel};
use kernels::compute::FillSeq;
use kernels::image::JacobiIter;
use kgraph::NodeOp;

fn main() {
    // Standalone Jacobi over a 1024x512 field (grid: 2048 blocks),
    // inputs produced by fill kernels.
    let (w, h) = (1024u32, 512u32);
    let n = w as u64 * h as u64;
    let mut mem = DeviceMemory::new();
    let bufs: Vec<_> =
        ["du", "dv", "ix", "iy", "it", "duo", "dvo"].iter().map(|s| mem.alloc_f32(n, s)).collect();
    let mut g = kgraph::AppGraph::new();
    let mut producers = Vec::new();
    for (i, buf) in bufs.iter().take(5).enumerate() {
        producers.push(g.add_kernel(Box::new(FillSeq::new(*buf, n as u32, 1e-4, i as f32))));
    }
    let ji = g.add_kernel(Box::new(JacobiIter::new(
        bufs[0], bufs[1], bufs[2], bufs[3], bufs[4], bufs[5], bufs[6], w, h, 0.1,
    )));
    for (i, &p) in producers.iter().enumerate() {
        g.add_edge(p, ji, bufs[i]);
    }
    let cfg = GpuConfig::gtx960m();
    let gt = kgraph::analyze(&g, &mut mem, cfg.cache.line_bytes).unwrap();
    let NodeOp::Kernel(k) = &g.node(ji).op else { unreachable!() };
    let dims = k.dims();
    let full = dims.num_blocks();
    println!("kernel: JI {dims} ({full} blocks); producers interleaved per tile\n");

    // For each operating point, process the whole grid in tiles of size T.
    let freqs = fig3_freq_configs();
    println!(
        "{:>8} {:>15} {:>15} {:>15} {:>15}  (total ms for {full} blocks)",
        "tile", freqs[0], freqs[1], freqs[2], freqs[3]
    );
    let mut best: Option<(f64, u32, FreqConfig)> = None;
    for tile in [full, full / 2, full / 4, full / 8, full / 16, full / 32] {
        print!("{tile:>8}");
        for &freq in &freqs {
            let mut eng = Engine::new(cfg.clone(), freq);
            let mut t = 0.0;
            let mut start = 0u32;
            while start < full {
                let end = (start + tile).min(full);
                for &p in &producers {
                    let NodeOp::Kernel(pk) = &g.node(p).op else { unreachable!() };
                    let pn = pk.dims().num_blocks();
                    let (lo, hi) = (start * pn / full, end * pn / full);
                    if lo < hi {
                        t += eng
                            .launch(&gt.node(p).work_of(lo..hi), pk.dims().threads_per_block())
                            .time_ns;
                    }
                }
                t += eng.launch(&gt.node(ji).work_of(start..end), dims.threads_per_block()).time_ns;
                start = end;
            }
            print!(" {:>13.2}ms", t / 1e6);
            let energy = PowerModel::gtx960m().energy_mj(&freq, t);
            if best.is_none() || energy < best.unwrap().0 {
                best = Some((energy, tile, freq));
            }
        }
        println!();
    }
    let (energy, tile, freq) = best.unwrap();
    println!("\nlowest energy (f*V^2 DVFS power model): {energy:.2} mJ with tile {tile} at {freq}");
    println!("the paper's point: small cache-fitting tiles let a low-power operating");
    println!("point match or beat a high-power one (Sec. II, Fig. 3 discussion).");
}
