//! A second full application: multigrid Poisson solver under KTILER.
//!
//! Demonstrates the paper's claim that the approach "works for various
//! GPU-based applications": the V-cycle's smoothing chains interleave
//! through the L2 exactly like the optical-flow Jacobi chains, even though
//! the application's structure (V-shaped grid hierarchy, error-correction
//! recursion) is completely different.
//!
//! Run with: `cargo run --release --example poisson_multigrid`

use gpu_sim::{FreqConfig, GpuConfig};
use ktiler::{
    calibrate, execute_schedule, ktiler_schedule, CalibrationConfig, KtilerConfig, Schedule,
    TileParams,
};
use multigrid::{build_app, residual_norm, Grid, MgParams};

fn main() {
    // 1024x1024 grid: the finest ping-pong pair is 8 MiB, 4x the L2.
    let (w, h) = (1024u32, 1024u32);
    let mut f = Grid::zeros(w, h);
    for y in 0..h {
        for x in 0..w {
            f.data[(y * w + x) as usize] = (x as f32 * 0.02).sin() * (y as f32 * 0.015).cos();
        }
    }
    // Four levels: the depth at which the cell-centered transfers still
    // converge robustly (see the multigrid crate docs).
    let p = MgParams { levels: 4, nu1: 2, nu2: 2, nu_coarse: 32, cycles: 3, omega: 0.8 };
    println!(
        "solving -lap(u) = f on {w}x{h}, {} levels, {} cycles (nu1={}, nu2={}, coarse={})",
        p.levels, p.cycles, p.nu1, p.nu2, p.nu_coarse
    );

    let mut app = build_app(&f, &p);
    let cfg = GpuConfig::gtx960m();
    let gt = kgraph::analyze(&app.graph, &mut app.mem, cfg.cache.line_bytes).unwrap();
    println!(
        "graph: {} kernels ({} smoothing sweeps), {} edges",
        app.graph.num_nodes(),
        app.smooth_nodes.len(),
        app.graph.num_edges()
    );

    // Numerics: the V-cycles knock the residual down.
    let u = Grid { w, h, data: app.mem.download_f32(app.u_out) };
    let r0 = residual_norm(&Grid::zeros(w, h), &f);
    let r = residual_norm(&u, &f);
    println!("residual: {r0:.3e} -> {r:.3e} ({} cycles)", p.cycles);

    let freq = FreqConfig::new(1324.0, 1600.0);
    let cal = calibrate(&app.graph, &gt, &cfg, freq, &CalibrationConfig::default());
    let kcfg = KtilerConfig {
        weight_threshold_ns: 1_000.0,
        tile: TileParams::paper(cfg.cache.capacity_bytes, cfg.cache.line_bytes, 0.0),
    };
    let out = ktiler_schedule(&app.graph, &gt, &cal, &kcfg).unwrap();
    out.schedule.validate(&app.graph, &gt.deps).unwrap();
    println!(
        "KTILER: {} clusters, {} launches ({:?})",
        out.clusters.len(),
        out.schedule.num_launches(),
        out.report
    );

    let def =
        execute_schedule(&Schedule::default_order(&app.graph), &app.graph, &gt, &cfg, freq, None)
            .unwrap();
    let tiled = execute_schedule(&out.schedule, &app.graph, &gt, &cfg, freq, None).unwrap();
    println!(
        "default: {:.2} ms (hit {:.0}%) | ktiler: {:.2} ms (hit {:.0}%) | gain {:.1}%",
        def.total_ns / 1e6,
        def.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        tiled.total_ns / 1e6,
        tiled.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        tiled.gain_over(&def).unwrap_or(0.0) * 100.0
    );
}
