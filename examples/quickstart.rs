//! Quickstart: tile a two-kernel image pipeline with KTILER.
//!
//! Builds the paper's motivational pipeline (grayscale → downscale), lets
//! the block analyzer discover block dependencies and footprints, runs the
//! KTILER scheduler and compares the tiled schedule against the default
//! execution on the simulated GTX 960M.
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_sim::{DeviceMemory, FreqConfig, GpuConfig};
use kernels::image::{Downscale, Grayscale};
use ktiler::{
    calibrate, execute_schedule, ktiler_schedule, CalibrationConfig, KtilerConfig, Schedule,
    TileParams,
};

fn main() {
    // 1. Allocate device buffers and describe the application graph.
    //    A large frame (2048x2048) makes the intermediate image exceed the
    //    2 MiB L2, which is the regime KTILER targets.
    let (w, h) = (2048u32, 2048u32);
    let mut mem = DeviceMemory::new();
    let rgba = mem.alloc_u8(4 * (w as u64) * (h as u64), "input rgba");
    let gray = mem.alloc_f32((w as u64) * (h as u64), "grayscale");
    let half = mem.alloc_f32((w as u64 / 2) * (h as u64 / 2), "downscaled");
    for i in 0..(w as u64) * (h as u64) {
        mem.write_u32(rgba, i, 0x00808080 ^ (i as u32).wrapping_mul(2654435761));
    }

    let mut graph = kgraph::AppGraph::new();
    let a = graph.add_kernel(Box::new(Grayscale::new(rgba, gray, w, h)));
    let b = graph.add_kernel(Box::new(Downscale::new(gray, half, w, h)));
    graph.add_edge(a, b, gray);

    // 2. Block analysis: one functional, instrumented run.
    let cfg = GpuConfig::gtx960m();
    let gt = kgraph::analyze(&graph, &mut mem, cfg.cache.line_bytes).expect("graph is a DAG");
    println!(
        "analyzed {} kernels: {} block-dependency edges",
        graph.num_nodes(),
        gt.deps.num_edges()
    );

    // 3. Calibration + scheduling.
    let freq = FreqConfig::new(1324.0, 1600.0);
    let cal = calibrate(&graph, &gt, &cfg, freq, &CalibrationConfig::default());
    let kcfg = KtilerConfig {
        weight_threshold_ns: 1_000.0,
        tile: TileParams::paper(cfg.cache.capacity_bytes, cfg.cache.line_bytes, 0.0),
    };
    let out = ktiler_schedule(&graph, &gt, &cal, &kcfg).unwrap();
    out.schedule.validate(&graph, &gt.deps).expect("KTILER schedules are valid");
    println!(
        "KTILER: {} clusters, {} launches ({} tiled), estimated {:.2} ms",
        out.clusters.len(),
        out.schedule.num_launches(),
        out.schedule.num_tiled_launches(&graph),
        out.est_cost_ns / 1e6
    );

    // 4. Execute both schedules on the simulated device.
    let default =
        execute_schedule(&Schedule::default_order(&graph), &graph, &gt, &cfg, freq, None).unwrap();
    let tiled = execute_schedule(&out.schedule, &graph, &gt, &cfg, freq, None).unwrap();
    println!(
        "default: {:.2} ms (L2 hit rate {:.0}%)",
        default.total_ns / 1e6,
        default.stats.hit_rate().unwrap_or(f64::NAN) * 100.0
    );
    println!(
        "ktiler : {:.2} ms (L2 hit rate {:.0}%) — {:.1}% faster",
        tiled.total_ns / 1e6,
        tiled.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        tiled.gain_over(&default).unwrap_or(0.0) * 100.0
    );

    // 5. The functional result is unchanged: spot-check a pixel.
    let v = mem.read_f32(half, 1234);
    println!("downscaled[1234] = {v:.4} (identical under any valid schedule)");
}
