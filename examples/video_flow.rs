//! Streaming video optical flow: one graph, many frame pairs, shared
//! pyramids — the kind of "over a thousand kernels" application graph the
//! paper targets, built from a handful of lines.
//!
//! Run with: `cargo run --release --example video_flow`

use gpu_sim::{FreqConfig, GpuConfig};
use hsoptflow::{build_video_app, smooth_pattern, Frame, HsParams};
use ktiler::{
    calibrate, execute_schedule, ktiler_schedule, CalibrationConfig, KtilerConfig, Schedule,
    TileParams,
};

fn main() {
    // A 6-frame pan over a 256x256 pattern: 5 flow computations.
    let (w, h) = (256u32, 256u32);
    let (dx, dy) = (0.9f32, -0.3f32);
    let base = smooth_pattern(w, h, 21);
    let frames: Vec<Frame> = (0..6)
        .map(|i| {
            let mut f = Frame::zeros(w, h);
            for y in 0..h {
                for x in 0..w {
                    f.data[(y * w + x) as usize] =
                        base.sample(x as f32 - dx * i as f32, y as f32 - dy * i as f32);
                }
            }
            f
        })
        .collect();

    let p = HsParams { levels: 3, jacobi_iters: 20, warp_iters: 1, alpha2: 0.05 };
    let mut app = build_video_app(&frames, &p);
    let cfg = GpuConfig::gtx960m();
    let gt = kgraph::analyze(&app.graph, &mut app.mem, cfg.cache.line_bytes).unwrap();
    println!(
        "video: {} frames -> {} pairs, {} kernels ({} JI), {} edges",
        frames.len(),
        app.flows.len(),
        app.graph.num_nodes(),
        app.ji_nodes.len(),
        app.graph.num_edges()
    );

    // Flow sanity: each pair recovers roughly the pan.
    for (i, &(u, _)) in app.flows.iter().enumerate() {
        let uv = app.mem.download_f32(u);
        let mean: f32 = uv.iter().sum::<f32>() / uv.len() as f32;
        println!("pair {i}: mean u = {mean:.2} (ground truth {dx})");
    }

    let freq = FreqConfig::new(1324.0, 1600.0);
    let cal = calibrate(&app.graph, &gt, &cfg, freq, &CalibrationConfig::default());
    let kcfg = KtilerConfig {
        weight_threshold_ns: 1_000.0,
        tile: TileParams::paper(cfg.cache.capacity_bytes, cfg.cache.line_bytes, 0.0),
    };
    let out = ktiler_schedule(&app.graph, &gt, &cal, &kcfg).unwrap();
    out.schedule.validate(&app.graph, &gt.deps).unwrap();
    let def =
        execute_schedule(&Schedule::default_order(&app.graph), &app.graph, &gt, &cfg, freq, None)
            .unwrap();
    let kt = execute_schedule(&out.schedule, &app.graph, &gt, &cfg, freq, None).unwrap();
    println!(
        "\ndefault: {:.2} ms (hit {:.0}%) | ktiler: {:.2} ms (hit {:.0}%) | gain {:.1}%",
        def.total_ns / 1e6,
        def.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        kt.total_ns / 1e6,
        kt.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        kt.gain_over(&def).unwrap_or(0.0) * 100.0
    );
    println!("(try larger frames for the paper's over-capacity regime)");
}
