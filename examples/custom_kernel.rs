//! Authoring a custom kernel: implement [`kgraph::Kernel`] yourself and
//! let KTILER tile your pipeline.
//!
//! The example writes a Sobel edge detector from scratch (the way a
//! downstream user would), chains it after a heat-diffusion denoising
//! chain from the kernel zoo, and shows the scheduler interleaving the
//! whole pipeline through the L2.
//!
//! Run with: `cargo run --release --example custom_kernel`

use gpu_sim::{BlockIdx, Buffer, DeviceMemory, FreqConfig, GpuConfig, LaunchDims};
use kernels::compute::HeatStep;
use kernels::{clampi, grid_for, pix, pixel_threads};
use kgraph::Kernel;
use ktiler::{
    calibrate, execute_schedule, ktiler_schedule, CalibrationConfig, KtilerConfig, Schedule,
    TileParams,
};
use trace::ExecCtx;

/// Sobel gradient magnitude: `out = |Gx| + |Gy|` with 3×3 Sobel taps.
///
/// Everything a kernel needs: a label, launch geometry, and a per-block
/// functional body that routes every memory access through the
/// instrumented context (which is what lets the analyzer see addresses).
struct Sobel {
    src: Buffer,
    dst: Buffer,
    w: u32,
    h: u32,
}

impl Kernel for Sobel {
    fn label(&self) -> String {
        "SOBEL".into()
    }

    fn dims(&self) -> LaunchDims {
        grid_for(self.w, self.h)
    }

    fn execute_block(&self, block: BlockIdx, ctx: &mut ExecCtx<'_>) {
        for (tid, x, y) in pixel_threads(block, self.w, self.h) {
            let at = |ctx: &mut ExecCtx<'_>, dx: i64, dy: i64| {
                let sx = clampi(x as i64 + dx, self.w);
                let sy = clampi(y as i64 + dy, self.h);
                ctx.ld_f32(self.src, pix(sx, sy, self.w), tid)
            };
            let (p00, p10, p20) = (at(ctx, -1, -1), at(ctx, 0, -1), at(ctx, 1, -1));
            let (p01, p21) = (at(ctx, -1, 0), at(ctx, 1, 0));
            let (p02, p12, p22) = (at(ctx, -1, 1), at(ctx, 0, 1), at(ctx, 1, 1));
            let gx = (p20 + 2.0 * p21 + p22) - (p00 + 2.0 * p01 + p02);
            let gy = (p02 + 2.0 * p12 + p22) - (p00 + 2.0 * p10 + p20);
            ctx.st_f32(self.dst, pix(x, y, self.w), gx.abs() + gy.abs(), tid);
            ctx.compute(tid, 14);
        }
    }

    /// Addresses depend only on geometry, so the trace is shareable and
    /// the kernel is tileable.
    fn signature(&self) -> Option<String> {
        Some(format!("SOBEL:{}x{}:{}:{}", self.w, self.h, self.src.addr, self.dst.addr))
    }
}

fn main() {
    let (w, h) = (1024u32, 1024u32);
    let n = (w as u64) * (h as u64);
    let mut mem = DeviceMemory::new();
    let noisy = mem.alloc_f32(n, "noisy");
    let ping = mem.alloc_f32(n, "ping");
    let pong = mem.alloc_f32(n, "pong");
    let edges = mem.alloc_f32(n, "edges");

    // A noisy vertical edge.
    for y in 0..h {
        for x in 0..w {
            let base = if x < w / 2 { 0.2 } else { 0.8 };
            let noise = ((x.wrapping_mul(31) ^ y.wrapping_mul(17)) % 100) as f32 / 500.0;
            mem.write_f32(noisy, pix(x, y, w), base + noise);
        }
    }

    // Pipeline: 6 heat-diffusion denoising steps, then Sobel.
    let mut g = kgraph::AppGraph::new();
    let mut prev_buf = noisy;
    let mut bufs = (ping, pong);
    let mut prev_node = None;
    for _ in 0..6 {
        let k = g.add_kernel(Box::new(HeatStep::new(prev_buf, bufs.0, w, h, 0.2)));
        if let Some(p) = prev_node {
            g.add_edge(p, k, prev_buf);
        }
        prev_node = Some(k);
        prev_buf = bufs.0;
        bufs = (bufs.1, bufs.0);
    }
    let sobel = g.add_kernel(Box::new(Sobel { src: prev_buf, dst: edges, w, h }));
    g.add_edge(prev_node.unwrap(), sobel, prev_buf);

    let cfg = GpuConfig::gtx960m();
    let gt = kgraph::analyze(&g, &mut mem, cfg.cache.line_bytes).unwrap();
    println!(
        "pipeline: {} kernels over a {}x{} field ({} MiB per buffer)",
        g.num_nodes(),
        w,
        h,
        n * 4 / (1 << 20)
    );

    // Sanity: the edge is where we put it.
    let mid = mem.read_f32(edges, pix(w / 2, h / 2, w));
    let flat = mem.read_f32(edges, pix(w / 8, h / 2, w));
    println!("edge response at boundary {mid:.3} vs flat region {flat:.3}");
    assert!(mid > 5.0 * flat.max(1e-3));

    let freq = FreqConfig::new(1324.0, 1600.0);
    let cal = calibrate(&g, &gt, &cfg, freq, &CalibrationConfig::default());
    let kcfg = KtilerConfig {
        weight_threshold_ns: 1_000.0,
        tile: TileParams::paper(cfg.cache.capacity_bytes, cfg.cache.line_bytes, 0.0),
    };
    let out = ktiler_schedule(&g, &gt, &cal, &kcfg).unwrap();
    out.schedule.validate(&g, &gt.deps).unwrap();
    println!("KTILER: {} clusters, {} launches", out.clusters.len(), out.schedule.num_launches());

    let def = execute_schedule(&Schedule::default_order(&g), &g, &gt, &cfg, freq, None).unwrap();
    let tiled = execute_schedule(&out.schedule, &g, &gt, &cfg, freq, None).unwrap();
    println!(
        "default: {:.2} ms (hit {:.0}%) | ktiler: {:.2} ms (hit {:.0}%) | gain {:.1}%",
        def.total_ns / 1e6,
        def.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        tiled.total_ns / 1e6,
        tiled.stats.hit_rate().unwrap_or(f64::NAN) * 100.0,
        tiled.gain_over(&def).unwrap_or(0.0) * 100.0
    );

    // Serialize the schedule as the runtime-enforcement artifact.
    let text = ktiler::schedule_to_text(&out.schedule);
    let roundtrip = ktiler::schedule_from_text(&text).unwrap();
    assert_eq!(roundtrip, out.schedule);
    println!(
        "schedule serialized to {} lines (see ktiler::schedule_to_text)",
        text.lines().count()
    );
}
